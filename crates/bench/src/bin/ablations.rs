//! Ablation studies beyond the paper's headline experiments:
//!
//! 1. FIFO geometry sweep (count × depth) for the dependence-based design,
//! 2. inter-cluster bypass latency sweep (the paper's "two or more
//!    cycles"),
//! 3. RAM- vs CAM-scheme rename delay (Section 4.1.1 trade-off).

use ce_bench::runner;
use ce_delay::rename::{RenameDelay, RenameParams, RenameScheme};
use ce_delay::{FeatureSize, Technology};
use ce_sim::{machine, SchedulerKind};
use ce_workloads::Benchmark;

fn main() {
    // Every simulated cell runs the perl kernel; enumerate the configs in
    // print order, fan them across the worker pool, then consume in order.
    let mut configs = Vec::new();
    for fifos in [4usize, 8, 16] {
        for depth in [4usize, 8, 16] {
            let mut cfg = machine::dependence_8way();
            cfg.scheduler = SchedulerKind::Fifos { fifos_per_cluster: fifos, depth };
            configs.push(cfg);
        }
    }
    for extra in 0..=4u64 {
        let mut cfg = machine::clustered_fifos_8way();
        cfg.intercluster_extra = extra;
        configs.push(cfg);
    }
    for inflight in [32usize, 64, 128, 256] {
        let mut cfg = machine::baseline_8way();
        cfg.max_inflight = inflight;
        configs.push(cfg);
    }
    for pregs in [48usize, 72, 120, 160] {
        let mut cfg = machine::baseline_8way();
        cfg.physical_regs = pregs;
        configs.push(cfg);
    }
    {
        let mut cfg = machine::baseline_8way();
        cfg.bpred.perfect = true;
        configs.push(cfg);
    }
    let jobs: Vec<runner::Job> =
        configs.into_iter().map(|cfg| (Benchmark::Perl, cfg)).collect();
    let mut results = runner::run_all(&jobs).into_iter();

    println!("Ablation 1: FIFO geometry (dependence-based 8-way, perl)");
    println!("{:>7} {:>7} {:>10} {:>8}", "fifos", "depth", "capacity", "IPC");
    ce_bench::rule(36);
    for fifos in [4usize, 8, 16] {
        for depth in [4usize, 8, 16] {
            let stats = results.next().expect("geometry cell");
            println!("{:>7} {:>7} {:>10} {:>8.3}", fifos, depth, fifos * depth, stats.ipc());
        }
    }

    println!();
    println!("Ablation 2: inter-cluster bypass latency (2x4-way FIFOs, perl)");
    println!("{:>14} {:>8} {:>12}", "extra cycles", "IPC", "IC-bypass %");
    ce_bench::rule(38);
    for extra in 0..=4u64 {
        let stats = results.next().expect("bypass cell");
        println!(
            "{:>14} {:>8.3} {:>11.1}%",
            extra,
            stats.ipc(),
            stats.intercluster_bypass_frequency() * 100.0
        );
    }

    println!();
    println!("Ablation 3: rename scheme delays at 0.18 um (Section 4.1.1)");
    println!("{:>4} {:>12} {:>12} {:>12}", "IW", "RAM (ps)", "CAM-80 (ps)", "CAM-160 (ps)");
    ce_bench::rule(44);
    let tech = Technology::new(FeatureSize::U018);
    for iw in [2usize, 4, 8] {
        let ram = RenameDelay::compute(&tech, &RenameParams::new(iw)).total_ps();
        let cam = |regs| {
            RenameDelay::compute(
                &tech,
                &RenameParams { issue_width: iw, physical_regs: regs, scheme: RenameScheme::Cam },
            )
            .total_ps()
        };
        println!("{:>4} {:>12.1} {:>12.1} {:>12.1}", iw, ram, cam(80), cam(160));
    }
    println!("(the CAM scheme scales with physical register count; the RAM scheme does not)");

    println!();
    println!("Ablation 4: machine limits (baseline window machine, perl)");
    println!("{:>22} {:>10} {:>8}", "knob", "value", "IPC");
    ce_bench::rule(42);
    for inflight in [32usize, 64, 128, 256] {
        let stats = results.next().expect("inflight cell");
        println!("{:>22} {:>10} {:>8.3}", "max in-flight", inflight, stats.ipc());
    }
    for pregs in [48usize, 72, 120, 160] {
        let stats = results.next().expect("preg cell");
        println!("{:>22} {:>10} {:>8.3}", "physical registers", pregs, stats.ipc());
    }
    {
        let stats = results.next().expect("oracle cell");
        println!("{:>22} {:>10} {:>8.3}", "branch prediction", "oracle", stats.ipc());
    }
    println!("(Table 3's 128 in-flight / 120 registers sit at the knee of both curves)");
}
