//! `diffcheck` — differential acceptance harness.
//!
//! Runs every Figure 17 organization on every benchmark kernel twice: once
//! through the optimized [`Simulator`] with its per-cycle invariant
//! checker enabled, once through the deliberately naive
//! [`OracleSimulator`], and demands *bit-identical* statistics
//! fingerprints. One `PASS`/`FAIL` line per cell; exits non-zero if any
//! cell fails, so CI can gate on it.
//!
//! ```text
//! diffcheck [KERNEL...]        # restrict to the named kernels
//! CE_MAX_INSTS=20000 diffcheck # shorten the smoke run
//! CE_THREADS=4 diffcheck       # bound the worker pool
//! ```

use ce_bench::runner;
use ce_sim::{machine, OracleSimulator, SimConfig, Simulator};
use ce_workloads::{trace_cached, Benchmark};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

struct Cell {
    machine: &'static str,
    bench: Benchmark,
    cfg: SimConfig,
}

enum Outcome {
    Pass { cycles: u64 },
    Fail { optimized: String, oracle: String },
    Error(String),
}

fn check_cell(cell: &Cell, cap: u64) -> Outcome {
    let trace = match trace_cached(cell.bench, cap) {
        Ok(t) => t,
        Err(e) => return Outcome::Error(format!("tracing failed: {e}")),
    };
    let mut checked = cell.cfg;
    checked.check = true;
    let optimized = match Simulator::try_new(checked) {
        Ok(sim) => sim.run(&trace),
        Err(e) => return Outcome::Error(e.to_string()),
    };
    let oracle = OracleSimulator::new(cell.cfg).run(&trace);
    if optimized.fingerprint() == oracle.fingerprint() {
        Outcome::Pass { cycles: optimized.cycles }
    } else {
        Outcome::Fail {
            optimized: optimized.fingerprint(),
            oracle: oracle.fingerprint(),
        }
    }
}

fn main() -> ExitCode {
    let filter: Vec<String> = std::env::args().skip(1).collect();
    let benchmarks: Vec<Benchmark> = Benchmark::all()
        .into_iter()
        .filter(|b| filter.is_empty() || filter.iter().any(|f| f == b.name()))
        .collect();
    if benchmarks.is_empty() {
        eprintln!("error: no benchmark matches {filter:?}");
        eprintln!(
            "known kernels: {}",
            Benchmark::all().into_iter().map(|b| b.name().to_owned()).collect::<Vec<_>>().join(" ")
        );
        return ExitCode::FAILURE;
    }

    let cap = ce_bench::max_insts();
    let cells: Vec<Cell> = machine::figure17_machines()
        .into_iter()
        .flat_map(|(machine, cfg)| {
            benchmarks.iter().map(move |&bench| Cell { machine, bench, cfg })
        })
        .collect();
    println!(
        "diffcheck: optimized simulator (invariant checker on) vs naive oracle, \
         {} organizations x {} kernels, {cap} instruction cap",
        machine::figure17_machines().len(),
        benchmarks.len(),
    );

    // Same work-stealing fan-out as the experiment runner: results land in
    // input order regardless of completion order.
    let n = cells.len();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Outcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..runner::threads().min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *slots[i].lock().expect("slot poisoned") = Some(check_cell(&cells[i], cap));
            });
        }
    });

    let mut failures = 0usize;
    for (cell, slot) in cells.iter().zip(slots) {
        let outcome = slot.into_inner().expect("slot poisoned").expect("every slot filled");
        let label = format!("{} x {}", cell.machine, cell.bench.name());
        match outcome {
            Outcome::Pass { cycles } => println!("PASS  {label:<45} ({cycles} cycles)"),
            Outcome::Fail { optimized, oracle } => {
                failures += 1;
                println!("FAIL  {label}");
                println!("      optimized: {optimized}");
                println!("      oracle:    {oracle}");
            }
            Outcome::Error(e) => {
                failures += 1;
                println!("FAIL  {label}");
                println!("      {e}");
            }
        }
    }
    println!();
    if failures == 0 {
        println!("diffcheck: all {n} cells bit-identical");
        ExitCode::SUCCESS
    } else {
        println!("diffcheck: {failures}/{n} cells diverged");
        ExitCode::FAILURE
    }
}
