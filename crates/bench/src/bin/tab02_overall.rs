//! Table 2: overall rename / wakeup+select / bypass delays for the 4-way,
//! 32-entry and 8-way, 64-entry machines across the three technologies,
//! with the paper's published values and the model's deviation.
//!
//! ```text
//! cargo run -p ce-bench --bin tab02_overall [--out PATH]
//! ```
//!
//! Prints the table and writes `tab02_overall.csv` atomically; exits 0 on
//! success, 1 if the delay models refuse to evaluate, 2 on usage or I/O
//! errors.

use ce_bench::cli::{finish_report, OutArgs};
use ce_bench::delay_csv;
use ce_delay::{PipelineDelays, Technology};
use std::process::ExitCode;

const PAPER: [(f64, usize, usize, f64, f64, f64); 6] = [
    (0.8, 4, 32, 1577.9, 2903.7, 184.9),
    (0.8, 8, 64, 1710.5, 3369.4, 1056.4),
    (0.35, 4, 32, 627.2, 1248.4, 184.9),
    (0.35, 8, 64, 726.6, 1484.8, 1056.4),
    (0.18, 4, 32, 351.0, 578.0, 184.9),
    (0.18, 8, 64, 427.9, 724.0, 1056.4),
];

fn main() -> ExitCode {
    let args = OutArgs::parse("results/tab02_overall.csv");
    println!("Table 2: overall delay results (measured vs paper, ps)");
    println!(
        "{:<6} {:>3}/{:<3} | {:>8} {:>8} {:>7} | {:>8} {:>8} {:>7} | {:>8} {:>8} {:>7}",
        "tech", "IW", "win", "rename", "paper", "dev", "wak+sel", "paper", "dev", "bypass",
        "paper", "dev"
    );
    ce_bench::rule(100);
    let techs = Technology::all();
    for (row, (feat, iw, win, p_ren, p_ws, p_byp)) in PAPER.iter().enumerate() {
        let tech = techs[row / 2];
        let d = PipelineDelays::compute(&tech, *iw, *win);
        println!(
            "{:<6} {:>3}/{:<3} | {:>8.1} {:>8.1} {:>7} | {:>8.1} {:>8.1} {:>7} | {:>8.1} {:>8.1} {:>7}",
            format!("{feat}um"),
            iw,
            win,
            d.rename_ps,
            p_ren,
            ce_bench::deviation(d.rename_ps, *p_ren),
            d.window_ps(),
            p_ws,
            ce_bench::deviation(d.window_ps(), *p_ws),
            d.bypass_ps,
            p_byp,
            ce_bench::deviation(d.bypass_ps, *p_byp),
        );
        let crit = d.critical_stage();
        let _ = crit;
    }
    println!();
    let t18 = techs[2];
    let d4 = PipelineDelays::compute(&t18, 4, 32);
    let d8 = PipelineDelays::compute(&t18, 8, 64);
    println!("Critical stage, 0.18 um 4-way: {}", d4.critical_stage().stage);
    println!(
        "Bypass growth 4->8 way: {:.1}x; bypass vs rename at 8-way: {}",
        d8.bypass_ps / d4.bypass_ps,
        if d8.bypass_ps > d8.rename_ps { "bypass dominates" } else { "rename dominates" }
    );
    finish_report("tab02_overall", delay_csv::tab02_overall(), &args.out)
}
