//! Performance snapshot of the simulator: runs the full Figure 17 sweep
//! (5 organizations × 7 kernels) — full-detail *and* sampled — and writes
//! `BENCH_sim.json` with per-cell wall time, simulated cycles per second,
//! the worker count and longest-first dispatch schedule actually used
//! (so a bench gate reproduces schedule-and-all on another machine), and
//! the sampled sweep's per-cell IPC error against the full runs.
//!
//! ```text
//! cargo run --release -p ce-bench --bin bench_snapshot [out.json]
//! ```
//!
//! The output path defaults to `results/BENCH_sim.json`. If a recorded
//! pre-change baseline exists at `results/BENCH_baseline.json`, the
//! snapshot reports the wall-clock speedup against it — both full-detail
//! and *effective* (baseline full sweep vs sampled sweep). `CE_THREADS`
//! and `CE_MAX_INSTS` apply as everywhere in `ce-bench`.

use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use ce_bench::runner;
use ce_sim::{machine, run_sampled, SampledStats, SamplingConfig};
use ce_workloads::{trace_cached, Benchmark};

fn main() {
    let out_path =
        std::env::args().nth(1).unwrap_or_else(|| "results/BENCH_sim.json".to_owned());
    let cap = ce_bench::max_insts();
    let machines = machine::figure17_machines();
    let total_start = Instant::now();

    // Generate all seven traces up front (in parallel), so the per-cell
    // times below measure the simulator alone.
    let load_start = Instant::now();
    std::thread::scope(|scope| {
        for bench in Benchmark::all() {
            scope.spawn(move || {
                trace_cached(bench, cap).unwrap_or_else(|e| panic!("tracing {bench}: {e}"));
            });
        }
    });
    let trace_load_s = load_start.elapsed().as_secs_f64();

    let jobs = runner::grid(&machines);
    let summary = runner::run_sweep(&jobs, cap, runner::RunOptions::default());
    let results: Vec<&runner::TimedResult> = summary
        .cells
        .iter()
        .enumerate()
        .map(|(i, c)| {
            c.as_ref().unwrap_or_else(|| panic!("cell {i} failed: {:?}", summary.failures))
        })
        .collect();
    // The sweep's own clocks (satellite of the telemetry PR): wall and
    // per-cell extremes come from the SweepSummary, not ad-hoc timers,
    // so this snapshot agrees byte-for-byte with what manifests record.
    let sweep_wall_s = summary.sweep_wall.as_secs_f64();
    let serial_wall_s = summary.serial_cell_wall.as_secs_f64();
    let min_cell_wall_s = summary.min_cell_wall.as_secs_f64();
    let max_cell_wall_s = summary.max_cell_wall.as_secs_f64();
    let total_wall_s = total_start.elapsed().as_secs_f64();

    let mut cells = String::new();
    let mut total_cycles = 0u64;
    for (i, ((bench, _), result)) in jobs.iter().zip(&results).enumerate() {
        let machine_name = machines[i % machines.len()].0;
        let wall = result.wall.as_secs_f64();
        total_cycles += result.stats.cycles;
        let _ = writeln!(
            cells,
            "    {{\"benchmark\": \"{}\", \"machine\": \"{}\", \"wall_s\": {:.6}, \
             \"cycles\": {}, \"committed\": {}, \"ipc\": {:.6}, \"mcycles_per_s\": {:.3}}},",
            bench.name(),
            machine_name,
            wall,
            result.stats.cycles,
            result.stats.committed,
            result.stats.ipc(),
            result.stats.cycles as f64 / wall.max(1e-9) / 1e6,
        );
    }
    let cells = cells.trim_end().trim_end_matches(',').to_owned();

    // Sampled sweep over the same grid: default geometry, same worker
    // pool and dispatch order as the full sweep, errors judged against
    // the full-detail cycles just measured.
    let sampling = SamplingConfig::default();
    let order = runner::schedule_order(&jobs, cap);
    let sampled_start = Instant::now();
    let sampled = run_sampled_grid(&jobs, cap, sampling, &order);
    let sampled_sweep_wall_s = sampled_start.elapsed().as_secs_f64();

    let mut sampled_cells = String::new();
    let mut max_abs_err = 0.0_f64;
    for (i, ((bench, _), (stats, wall_s))) in jobs.iter().zip(&sampled).enumerate() {
        let err = stats.cycle_error_vs(results[i].stats.cycles);
        max_abs_err = max_abs_err.max(err.abs());
        let _ = writeln!(
            sampled_cells,
            "      {{\"benchmark\": \"{}\", \"machine\": \"{}\", \"est_cycles\": {}, \
             \"full_cycles\": {}, \"cycle_err\": {:.6}, \"wall_s\": {:.6}}},",
            bench.name(),
            machines[i % machines.len()].0,
            stats.est_cycles,
            results[i].stats.cycles,
            err,
            wall_s,
        );
    }
    let sampled_cells = sampled_cells.trim_end().trim_end_matches(',').to_owned();
    let schedule_json =
        order.iter().map(usize::to_string).collect::<Vec<_>>().join(", ");

    let baseline = read_baseline_sweep_wall("results/BENCH_baseline.json");
    let (baseline_json, speedup_json, effective_json) = match baseline {
        Some(base) => (
            format!("{base:.6}"),
            format!("{:.3}", base / sweep_wall_s.max(1e-9)),
            format!("{:.3}", base / sampled_sweep_wall_s.max(1e-9)),
        ),
        None => ("null".to_owned(), "null".to_owned(), "null".to_owned()),
    };

    let json = format!(
        "{{\n  \"schema\": \"ce-bench.BENCH_sim.v3\",\n  \"sweep\": \"fig17\",\n  \
         \"max_insts\": {cap},\n  \"threads\": {},\n  \"schedule\": [{schedule_json}],\n  \
         \"cells\": [\n{cells}\n  ],\n  \
         \"sampled\": {{\n    \
         \"config\": {{\"warmup_insts\": {}, \"window_insts\": {}, \
         \"cooldown_insts\": {}, \"period_insts\": {}}},\n    \
         \"cells\": [\n{sampled_cells}\n    ],\n    \
         \"max_abs_cycle_err\": {max_abs_err:.6},\n    \
         \"sweep_wall_s\": {sampled_sweep_wall_s:.6}\n  }},\n  \
         \"trace_load_s\": {trace_load_s:.6},\n  \"sweep_wall_s\": {sweep_wall_s:.6},\n  \
         \"serial_cell_wall_s\": {serial_wall_s:.6},\n  \
         \"min_cell_wall_s\": {min_cell_wall_s:.6},\n  \
         \"max_cell_wall_s\": {max_cell_wall_s:.6},\n  \"total_wall_s\": {total_wall_s:.6},\n  \
         \"sim_mcycles_per_s\": {:.3},\n  \"baseline_sweep_wall_s\": {baseline_json},\n  \
         \"speedup_vs_baseline\": {speedup_json},\n  \
         \"effective_speedup_vs_baseline\": {effective_json}\n}}\n",
        runner::threads(),
        sampling.warmup_insts,
        sampling.window_insts,
        sampling.cooldown_insts,
        sampling.period_insts,
        total_cycles as f64 / sweep_wall_s.max(1e-9) / 1e6,
    );

    if let Some(dir) = Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));

    println!(
        "fig17 sweep: {} cells, {} threads, cap {cap}",
        results.len(),
        runner::threads()
    );
    println!("trace load   {trace_load_s:>8.3} s");
    println!(
        "sweep wall   {sweep_wall_s:>8.3} s  (sum of cells {serial_wall_s:.3} s, \
         cells {:.0}-{:.0} ms)",
        min_cell_wall_s * 1e3,
        max_cell_wall_s * 1e3,
    );
    println!(
        "throughput   {:>8.1} M simulated cycles/s",
        total_cycles as f64 / sweep_wall_s.max(1e-9) / 1e6
    );
    println!(
        "sampled      {sampled_sweep_wall_s:>8.3} s  (max |cycle err| {:.2}%)",
        max_abs_err * 100.0
    );
    match baseline {
        Some(base) => println!(
            "baseline     {base:>8.3} s → speedup {:.2}x full, {:.2}x effective (sampled)",
            base / sweep_wall_s.max(1e-9),
            base / sampled_sweep_wall_s.max(1e-9)
        ),
        None => println!("baseline     (none recorded at results/BENCH_baseline.json)"),
    }
    println!("wrote {out_path}");
}

/// Runs the sampled sweep over the grid with the same worker-pool shape
/// as the full sweep (`CE_THREADS` workers pulling cells longest-first),
/// returning per-cell `(stats, wall_s)` in input order.
fn run_sampled_grid(
    jobs: &[runner::Job],
    cap: u64,
    sampling: SamplingConfig,
    order: &[usize],
) -> Vec<(SampledStats, f64)> {
    let n = jobs.len();
    let workers = runner::threads().min(n.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<(SampledStats, f64)>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= n {
                    break;
                }
                let i = order[k];
                let (bench, cfg) = jobs[i];
                let trace = trace_cached(bench, cap)
                    .unwrap_or_else(|e| panic!("tracing {bench}: {e}"));
                let start = Instant::now();
                let stats = run_sampled(cfg, &trace, sampling)
                    .unwrap_or_else(|e| panic!("sampled {bench}: {e}"));
                *slots[i].lock().expect("slot poisoned") =
                    Some((stats, start.elapsed().as_secs_f64()));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot poisoned").expect("all cells run"))
        .collect()
}

/// Pulls `"sweep_wall_s": <number>` out of a previously written snapshot.
/// Hand-rolled (no JSON dependency): the file is our own output format.
fn read_baseline_sweep_wall(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"sweep_wall_s\":";
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}
