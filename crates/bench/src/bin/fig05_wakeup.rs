//! Figure 5: wakeup delay versus window size for 2/4/8-way at 0.18 µm.
//!
//! ```text
//! cargo run -p ce-bench --bin fig05_wakeup [--out PATH]
//! ```
//!
//! Prints the table and writes `fig05_wakeup.csv` atomically; exits 0 on
//! success, 1 if the delay models refuse to evaluate, 2 on usage or I/O
//! errors.

use ce_bench::cli::{finish_report, OutArgs};
use ce_bench::delay_csv;
use ce_delay::wakeup::{WakeupDelay, WakeupParams};
use ce_delay::{FeatureSize, Technology};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = OutArgs::parse("results/fig05_wakeup.csv");
    let tech = Technology::new(FeatureSize::U018);
    println!("Figure 5: wakeup delay (ps) vs window size, 0.18 um");
    println!("{:>8} {:>10} {:>10} {:>10}", "window", "2-way", "4-way", "8-way");
    ce_bench::rule(42);
    for window in (8..=64).step_by(8) {
        let d = |iw| WakeupDelay::compute(&tech, &WakeupParams::new(iw, window)).total_ps();
        println!("{:>8} {:>10.1} {:>10.1} {:>10.1}", window, d(2), d(4), d(8));
    }
    println!();
    let d = |iw| WakeupDelay::compute(&tech, &WakeupParams::new(iw, 64)).total_ps();
    println!(
        "At window 64: 2->4-way {:+.1}% (paper +34%), 4->8-way {:+.1}% (paper +46%)",
        (d(4) / d(2) - 1.0) * 100.0,
        (d(8) / d(4) - 1.0) * 100.0
    );
    finish_report("fig05_wakeup", delay_csv::fig05_wakeup(), &args.out)
}
