//! Seeded fault-injection campaign driver: proves the stack's "no fault
//! is silent" guarantee by injecting 100+ deterministic faults across
//! three classes (trace corruption, config perturbation, scheduler
//! faults) and classifying every one.
//!
//! ```text
//! cargo run --release -p ce-bench --bin faultcampaign -- [SEED]
//! ```
//!
//! Exit code 0 when every fault was detected, harmless, visible, or
//! masked; 1 when any fault was **silent** (it corrupted state without
//! any validation layer noticing — a bug). The seed defaults to `0xce`
//! and can also be set via `CE_FAULT_SEED`. Per-class wall time and the
//! slowest case are reported; a failing run ends with one
//! machine-readable line:
//!
//! ```text
//! faultcampaign: error[silent-fault] silent=2 cases=118 seed=0xce
//! ```

use std::process::ExitCode;
use std::time::Duration;

use ce_bench::fault::{run_campaign, CaseReport, Outcome};

fn main() -> ExitCode {
    let seed = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("CE_FAULT_SEED").ok())
        .map(|s| match parse_seed(&s) {
            Some(seed) => seed,
            None => {
                eprintln!("faultcampaign: error: bad seed `{s}` (decimal or 0x-hex)");
                std::process::exit(2);
            }
        })
        .unwrap_or(0xce);

    println!("fault-injection campaign, seed {seed:#x}");
    let report = run_campaign(seed);

    let classes = [("trace/", "trace corruption"), ("config/", "config perturbation"), ("sched/", "scheduler injection")];
    println!(
        "{:<22} {:>6} {:>9} {:>9} {:>8} {:>7} {:>7} {:>8}",
        "class", "cases", "detected", "harmless", "visible", "masked", "SILENT", "wall"
    );
    ce_bench::rule(83);
    let wall_of = |cases: &mut dyn Iterator<Item = &CaseReport>| {
        cases.map(|c| c.wall).sum::<Duration>()
    };
    for (prefix, label) in classes {
        let in_class =
            |o: Outcome| report.cases.iter().filter(|c| c.name.starts_with(prefix) && c.outcome == o).count();
        let total = report.cases.iter().filter(|c| c.name.starts_with(prefix)).count();
        let wall = wall_of(&mut report.cases.iter().filter(|c| c.name.starts_with(prefix)));
        println!(
            "{:<22} {:>6} {:>9} {:>9} {:>8} {:>7} {:>7} {:>7.2}s",
            label,
            total,
            in_class(Outcome::Detected),
            in_class(Outcome::Harmless),
            in_class(Outcome::Visible),
            in_class(Outcome::Masked),
            in_class(Outcome::Silent),
            wall.as_secs_f64(),
        );
    }
    println!(
        "{:<22} {:>6} {:>9} {:>9} {:>8} {:>7} {:>7} {:>7.2}s",
        "total",
        report.cases.len(),
        report.count(Outcome::Detected),
        report.count(Outcome::Harmless),
        report.count(Outcome::Visible),
        report.count(Outcome::Masked),
        report.count(Outcome::Silent),
        wall_of(&mut report.cases.iter()).as_secs_f64(),
    );
    if let Some(slowest) = report.cases.iter().max_by_key(|c| c.wall) {
        println!(
            "slowest case: {} ({:.1} ms, {})",
            slowest.name,
            slowest.wall.as_secs_f64() * 1e3,
            slowest.outcome.name(),
        );
    }

    if report.is_clean() {
        println!();
        println!("no silent faults: every injection was detected, harmless, visible, or masked");
        ExitCode::SUCCESS
    } else {
        eprintln!();
        for case in report.silent() {
            eprintln!("faultcampaign: SILENT: {}: {}", case.name, case.detail);
        }
        eprintln!(
            "faultcampaign: error[silent-fault] silent={} cases={} seed={seed:#x}",
            report.count(Outcome::Silent),
            report.cases.len()
        );
        ExitCode::from(1)
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}
