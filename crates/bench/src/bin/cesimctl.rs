//! `cesimctl` — client for the `cesimd` experiment daemon.
//!
//! ```text
//! cesimctl [--socket PATH] ping
//! cesimctl [--socket PATH] status
//! cesimctl [--socket PATH] shutdown
//! cesimctl [--socket PATH] submit SWEEP [options]
//! cesimctl [--socket PATH] submit-cells BENCH:MACHINE[,BENCH:MACHINE...]
//!          [--attribution] [--sampled] [options]
//!
//!   SWEEP            fig13 | fig15 | fig17 | occupancy | explore-tiny |
//!                    explore-full
//!   options:
//!     --max-insts N      per-benchmark instruction cap (daemon default)
//!     --deadline-ms N    per-cell wall-clock deadline
//!     --allow-degraded   permit sampled degradation under queue pressure
//!     --tag NAME         display tag for telemetry/logs
//!     --artifacts DIR    write the returned artifact files into DIR
//!     --quiet            suppress per-cell progress lines
//! ```
//!
//! Exit codes follow the suite's discipline: 0 clean, 1 experiment
//! failures (failed cells, `error[overloaded]` backpressure), 2
//! usage/protocol/I-O errors. Daemon-side failures arrive as structured
//! `error[KIND]` events and are reprinted verbatim.

#[cfg(unix)]
mod ctl {
    use ce_bench::api::{CellSpec, JobEvent, JobSpec, SweepKind, SweepRequest};
    use ce_bench::json::Json;
    use ce_workloads::Benchmark;
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::os::unix::net::UnixStream;
    use std::path::PathBuf;
    use std::process::ExitCode;

    const USAGE: &str = "usage: cesimctl [--socket PATH] \
        (ping | status | shutdown | submit SWEEP [options] | \
        submit-cells BENCH:MACHINE[,...] [--attribution] [--sampled] [options])\n\
        options: [--max-insts N] [--deadline-ms N] [--allow-degraded] \
        [--tag NAME] [--artifacts DIR] [--quiet]";

    struct Options {
        socket: PathBuf,
        command: Command,
        artifacts: Option<PathBuf>,
        quiet: bool,
    }

    enum Command {
        Ping,
        Status,
        Shutdown,
        Submit(JobSpec),
    }

    fn parse_cells(list: &str) -> Result<Vec<CellSpec>, String> {
        list.split(',')
            .map(|cell| {
                let (bench, machine) = cell
                    .split_once(':')
                    .ok_or_else(|| format!("cell `{cell}` is not BENCH:MACHINE"))?;
                Ok(CellSpec {
                    bench: Benchmark::from_name(bench)
                        .ok_or_else(|| format!("unknown benchmark `{bench}`"))?,
                    machine: machine.to_owned(),
                })
            })
            .collect()
    }

    fn parse_args() -> Result<Options, String> {
        let mut socket = PathBuf::from("cesimd-state/cesimd.sock");
        let mut artifacts = None;
        let mut quiet = false;
        let mut command: Option<Command> = None;
        let mut attribution = false;
        let mut sampled = false;
        let mut max_insts = None;
        let mut deadline_ms = None;
        let mut allow_degraded = false;
        let mut tag = None;

        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |what: &str| {
                args.next().ok_or_else(|| format!("{what} requires a value"))
            };
            match arg.as_str() {
                "--socket" => socket = PathBuf::from(value("--socket")?),
                "--artifacts" => artifacts = Some(PathBuf::from(value("--artifacts")?)),
                "--quiet" => quiet = true,
                "--attribution" => attribution = true,
                "--sampled" => sampled = true,
                "--allow-degraded" => allow_degraded = true,
                "--max-insts" => {
                    max_insts = Some(
                        value("--max-insts")?
                            .parse()
                            .map_err(|e| format!("bad --max-insts: {e}"))?,
                    );
                }
                "--deadline-ms" => {
                    deadline_ms = Some(
                        value("--deadline-ms")?
                            .parse()
                            .map_err(|e| format!("bad --deadline-ms: {e}"))?,
                    );
                }
                "--tag" => tag = Some(value("--tag")?),
                "--help" | "-h" => return Err(String::new()),
                "ping" if command.is_none() => command = Some(Command::Ping),
                "status" if command.is_none() => command = Some(Command::Status),
                "shutdown" if command.is_none() => command = Some(Command::Shutdown),
                "submit" if command.is_none() => {
                    let name = value("submit")?;
                    let kind = SweepKind::from_name(&name)
                        .ok_or_else(|| format!("unknown sweep `{name}`"))?;
                    command = Some(Command::Submit(JobSpec::preset(kind)));
                }
                "submit-cells" if command.is_none() => {
                    let cells = parse_cells(&value("submit-cells")?)?;
                    command = Some(Command::Submit(JobSpec {
                        request: SweepRequest::Cells { cells, attribution: false, sampled: false },
                        max_insts: None,
                        deadline_ms: None,
                        allow_degraded: false,
                        tag: None,
                    }));
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        let mut command = command.ok_or("no command given")?;
        if let Command::Submit(spec) = &mut command {
            spec.max_insts = max_insts;
            spec.deadline_ms = deadline_ms;
            spec.allow_degraded = allow_degraded;
            spec.tag = tag;
            if let SweepRequest::Cells { attribution: a, sampled: s, .. } = &mut spec.request {
                *a = attribution;
                *s = sampled;
            }
        }
        Ok(Options { socket, command, artifacts, quiet })
    }

    fn request(socket: &PathBuf, line: &str) -> std::io::Result<BufReader<UnixStream>> {
        let mut stream = UnixStream::connect(socket)?;
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        Ok(BufReader::new(stream))
    }

    /// One-line ops: send, print the single reply, succeed if any reply
    /// came back.
    fn simple_op(socket: &PathBuf, op: &str) -> ExitCode {
        let reader = match request(socket, &format!("{{\"op\": \"{op}\"}}")) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cesimctl: error[io]: connecting {}: {e}", socket.display());
                return ExitCode::from(2);
            }
        };
        match reader.lines().next() {
            Some(Ok(line)) => {
                println!("{line}");
                ExitCode::SUCCESS
            }
            _ => {
                eprintln!("cesimctl: error[io]: no reply from daemon");
                ExitCode::from(2)
            }
        }
    }

    fn submit(opts: &Options, spec: &JobSpec) -> ExitCode {
        let line = format!("{{\"op\": \"submit\", \"spec\": {}}}", spec.to_json());
        let reader = match request(&opts.socket, &line) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cesimctl: error[io]: connecting {}: {e}", opts.socket.display());
                return ExitCode::from(2);
            }
        };
        let mut exit = ExitCode::from(2); // no `done`/`error` = protocol failure
        for line in reader.lines() {
            let Ok(line) = line else { break };
            let event = Json::parse(&line)
                .map_err(|e| e.to_string())
                .and_then(|doc| JobEvent::from_json(&doc));
            match event {
                Ok(JobEvent::Accepted { job, cells, degraded }) => {
                    if !opts.quiet {
                        eprintln!(
                            "cesimctl: job {job} accepted ({cells} cells{})",
                            if degraded { ", degraded to sampled mode" } else { "" }
                        );
                    }
                }
                Ok(JobEvent::Cell { cell, source, .. }) => {
                    if !opts.quiet {
                        eprintln!("cesimctl: cell {cell}: {}", source.name());
                    }
                }
                Ok(JobEvent::Error { kind, message }) => {
                    eprintln!("cesimctl: error[{kind}]: {message}");
                    // I/O and protocol problems are exit 2; backpressure
                    // and experiment failures are exit 1.
                    exit = if kind == "overloaded" { ExitCode::from(1) } else { ExitCode::from(2) };
                    if kind != "io" {
                        break; // terminal: the daemon sends nothing further
                    }
                }
                Ok(JobEvent::Done { job, outcome }) => {
                    if !opts.quiet {
                        eprintln!(
                            "cesimctl: job {job} done: {} ok, {} failed \
                             ({} cached, {} simulated)",
                            outcome.ok, outcome.failed, outcome.cache_hits, outcome.cache_misses
                        );
                    }
                    for failure in &outcome.failures {
                        eprintln!("cesimctl: error: {failure}");
                    }
                    let mut io_failed = false;
                    for (name, content) in &outcome.artifacts {
                        match &opts.artifacts {
                            Some(dir) => {
                                let path = dir.join(name);
                                if let Err(e) =
                                    ce_bench::checkpoint::write_atomic(&path, content)
                                {
                                    eprintln!(
                                        "cesimctl: error[io]: writing {}: {e}",
                                        path.display()
                                    );
                                    io_failed = true;
                                } else if !opts.quiet {
                                    eprintln!("cesimctl: wrote {}", path.display());
                                }
                            }
                            None => print!("{content}"),
                        }
                    }
                    exit = if io_failed {
                        ExitCode::from(2)
                    } else if outcome.failed > 0 {
                        ExitCode::from(1)
                    } else {
                        ExitCode::SUCCESS
                    };
                    break;
                }
                Err(e) => {
                    eprintln!("cesimctl: error[io]: bad event line: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        exit
    }

    pub fn main() -> ExitCode {
        let opts = match parse_args() {
            Ok(opts) => opts,
            Err(msg) => {
                if !msg.is_empty() {
                    eprintln!("error: {msg}");
                }
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        };
        match &opts.command {
            Command::Ping => simple_op(&opts.socket, "ping"),
            Command::Status => simple_op(&opts.socket, "status"),
            Command::Shutdown => simple_op(&opts.socket, "shutdown"),
            Command::Submit(spec) => submit(&opts, spec),
        }
    }
}

#[cfg(unix)]
fn main() -> std::process::ExitCode {
    ctl::main()
}

#[cfg(not(unix))]
fn main() -> std::process::ExitCode {
    eprintln!("cesimctl: error[io]: Unix domain sockets are unavailable on this platform");
    std::process::ExitCode::from(2)
}
