//! Sampled-vs-full IPC error check — the CI smoke gate for sampled
//! simulation.
//!
//! ```text
//! cargo run --release -p ce-bench --bin sampling_check -- \
//!     [--bench NAME|all] [--max-err F]
//! ```
//!
//! Runs each requested kernel both ways on the baseline machine — a full
//! detailed run and a sampled run with the default
//! [`SamplingConfig`] geometry — and fails (exit 1) if any kernel's
//! estimated cycle count is off by more than `--max-err` (default 0.02,
//! the 2% bound the sampling error model in DESIGN.md promises).
//! `CE_MAX_INSTS` applies as everywhere in `ce-bench`.
//!
//! Exit codes: 0 within bounds, 1 error bound exceeded, 2 usage error.
//! Each kernel reports the wall time of both runs; a failing run ends
//! with one machine-readable line:
//!
//! ```text
//! sampling_check: error[sampling-bound] worst=0.0312 bound=0.0200 bench=li
//! ```

use ce_sim::{machine, run_sampled, SamplingConfig, Simulator};
use ce_workloads::Benchmark;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut benches: Vec<Benchmark> = vec![Benchmark::Compress];
    let mut max_err = 0.02_f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bench" => {
                let Some(name) = args.next() else {
                    eprintln!("error: --bench needs a value");
                    return ExitCode::from(2);
                };
                if name == "all" {
                    benches = Benchmark::all().to_vec();
                } else {
                    let Some(b) = Benchmark::all().into_iter().find(|b| b.name() == name)
                    else {
                        eprintln!("error: unknown benchmark `{name}`");
                        return ExitCode::from(2);
                    };
                    benches = vec![b];
                }
            }
            "--max-err" => {
                let Some(value) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("error: --max-err needs a number");
                    return ExitCode::from(2);
                };
                max_err = value;
            }
            other => {
                eprintln!("error: unexpected argument `{other}`");
                eprintln!("usage: sampling_check [--bench NAME|all] [--max-err F]");
                return ExitCode::from(2);
            }
        }
    }

    let cap = ce_bench::max_insts();
    let cfg = machine::baseline_8way();
    let sampling = SamplingConfig::default();
    let mut worst = 0.0_f64;
    let mut worst_bench = benches[0];
    for bench in benches {
        let trace = ce_workloads::trace_cached(bench, cap)
            .unwrap_or_else(|e| panic!("tracing {bench}: {e}"));
        let full_start = Instant::now();
        let full = Simulator::new(cfg).run(&trace);
        let full_wall = full_start.elapsed();
        let sampled_start = Instant::now();
        let sampled =
            run_sampled(cfg, &trace, sampling).unwrap_or_else(|e| panic!("{bench}: {e}"));
        let sampled_wall = sampled_start.elapsed();
        let err = sampled.cycle_error_vs(full.cycles);
        if err.abs() > worst {
            worst = err.abs();
            worst_bench = bench;
        }
        println!(
            "{:<10} full {:>8} cyc (ipc {:.3}, {:.2}s)  sampled {:>8} cyc \
             (ipc {:.3}, {:.2}s)  err {:+.4}  [{} windows, {:.0}% detailed]",
            bench.name(),
            full.cycles,
            full.ipc(),
            full_wall.as_secs_f64(),
            sampled.est_cycles,
            sampled.est_ipc(),
            sampled_wall.as_secs_f64(),
            err,
            sampled.windows,
            sampled.detailed_insts as f64 / sampled.total_insts as f64 * 100.0,
        );
    }
    println!("worst |cycle err| {:.4} (bound {max_err:.4})", worst);
    if worst > max_err {
        eprintln!(
            "sampling_check: error[sampling-bound] worst={worst:.4} bound={max_err:.4} \
             bench={}",
            worst_bench.name()
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
