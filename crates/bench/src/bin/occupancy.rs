//! Scheduler occupancy and dispatch-stall anatomy across organizations —
//! *why* the FIFO machines lose the IPC they lose: the steering heuristic
//! refuses placements a flexible window would accept (scheduler stalls),
//! and FIFO slots shadow ready instructions behind unready heads (lower
//! effective occupancy).

use ce_bench::runner;
use ce_sim::machine;
use ce_workloads::Benchmark;

fn main() {
    let machines = [
        ("window", machine::baseline_8way()),
        ("fifos", machine::dependence_8way()),
        ("2c-fifos", machine::clustered_fifos_8way()),
        ("2c-windows", machine::clustered_windows_dispatch_8way()),
    ];
    println!("Scheduler occupancy and dispatch stalls");
    println!(
        "{:<10} {:<11} {:>8} {:>10} {:>12} {:>10} {:>9} {:>8}",
        "benchmark", "machine", "IPC", "occupancy", "sched-stall", "inflight", "preg", "idle"
    );
    ce_bench::rule(84);
    let jobs = runner::grid(&machines);
    let mut results = runner::run_all(&jobs).into_iter();
    for bench in Benchmark::all() {
        for (name, _) in &machines {
            let stats = results.next().expect("one result per cell");
            println!(
                "{:<10} {:<11} {:>8.3} {:>10.1} {:>12} {:>10} {:>9} {:>7.1}%",
                bench.name(),
                name,
                stats.ipc(),
                stats.mean_occupancy(),
                stats.scheduler_stalls,
                stats.inflight_stalls,
                stats.preg_stalls,
                stats.idle_issue_fraction() * 100.0
            );
        }
    }
    println!();
    println!("The FIFO organizations run at lower mean occupancy for the same window");
    println!("capacity — chains serialize issue — and take scheduler stalls the");
    println!("flexible window never sees. That is the IPC price of head-only wakeup,");
    println!("and Section 5.3's point is that the faster clock more than pays for it.");
}
