//! Scheduler occupancy and dispatch-stall anatomy across organizations —
//! *why* the FIFO machines lose the IPC they lose: the steering heuristic
//! refuses placements a flexible window would accept (scheduler stalls),
//! and FIFO slots shadow ready instructions behind unready heads (lower
//! effective occupancy).
//!
//! ```text
//! cargo run --release -p ce-bench --bin occupancy -- [--out PATH] [--resume]
//! ```
//!
//! The last three columns come from the stall-attribution accountant:
//! the share of the machine's issue slots charged to operand waits, to
//! unready FIFO heads, and to the empty-window background. Together with
//! `used` (issued slots) they bound the slot budget; the remaining
//! causes (FU contention, inter-cluster waits, dispatch backpressure,
//! mispredict recovery) make up the rest.
//!
//! Runs fault-tolerantly: each cell is journaled as it completes, so a
//! killed run restarted with `--resume` re-simulates only unfinished
//! cells and writes a byte-identical CSV.

use std::process::ExitCode;

use ce_bench::api::{self, SweepKind};
use ce_bench::cli::{finish_sweep, SweepArgs};
use ce_bench::runner::{self, SweepOptions};
use ce_sim::StallCause;
use ce_workloads::Benchmark;

fn main() -> ExitCode {
    let args = SweepArgs::parse("results/occupancy.csv");
    // Grid, options, and the CSV renderer come from the shared api plan
    // (see `ce_bench::api`): this binary and cesimd emit the same bytes.
    let machines = api::occupancy_machines();
    let plan = api::plan(SweepKind::Occupancy);
    let jobs = plan.jobs;
    let max_insts = ce_bench::max_insts();
    let telemetry = match args.obs.telemetry("occupancy", &jobs, max_insts, args.resume) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("occupancy: error[io]: telemetry journal: {e}");
            return ExitCode::from(2);
        }
    };
    let opts = SweepOptions {
        run: plan.run,
        checkpoint: Some(args.checkpoint()),
        telemetry,
        ..SweepOptions::default()
    };
    let summary = match runner::run_sweep_ft(&jobs, max_insts, &opts) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("occupancy: error[io]: checkpoint journal: {e}");
            return ExitCode::from(2);
        }
    };

    let mut csv = String::new();
    if summary.all_ok() {
        csv = api::occupancy_csv(&summary);
        println!("Scheduler occupancy, dispatch stalls, and issue-slot attribution");
        println!(
            "{:<10} {:<11} {:>8} {:>10} {:>12} {:>10} {:>9} {:>8} {:>8} {:>9} {:>7}",
            "benchmark",
            "machine",
            "IPC",
            "occupancy",
            "sched-stall",
            "inflight",
            "preg",
            "idle",
            "operand",
            "fifohead",
            "empty"
        );
        ce_bench::rule(112);
        let mut results = summary.ok_cells().map(|r| &r.stats);
        for bench in Benchmark::all() {
            for (name, cfg) in &machines {
                let stats = results.next().expect("one result per cell");
                let slots = cfg.issue_width as u64 * stats.cycles;
                let pct = |cause: StallCause| {
                    stats.stall_breakdown.get(cause) as f64 / slots as f64 * 100.0
                };
                println!(
                    "{:<10} {:<11} {:>8.3} {:>10.1} {:>12} {:>10} {:>9} {:>7.1}% {:>7.1}% {:>8.1}% {:>6.1}%",
                    bench.name(),
                    name,
                    stats.ipc(),
                    stats.mean_occupancy(),
                    stats.scheduler_stalls,
                    stats.inflight_stalls,
                    stats.preg_stalls,
                    stats.idle_issue_fraction() * 100.0,
                    pct(StallCause::OperandWait),
                    pct(StallCause::FifoHeadNotReady),
                    pct(StallCause::EmptyWindow)
                );
            }
        }
        println!();
        println!("The FIFO organizations run at lower mean occupancy for the same window");
        println!("capacity — chains serialize issue — and take scheduler stalls the");
        println!("flexible window never sees. That is the IPC price of head-only wakeup,");
        println!("and Section 5.3's point is that the faster clock more than pays for it.");
        println!("The `fifohead` column is that price in issue slots; `operand` is true");
        println!("dataflow latency, which no scheduler organization can recover.");
        println!();
    }
    finish_sweep("occupancy", &args, &jobs, max_insts, opts.run, &summary, &csv)
}
