//! The on-disk content-addressed result store.
//!
//! One file per simulated cell, named by the cell's identity hash
//! ([`crate::manifest::cell_key_with`]): `<root>/<key>.json`. The key
//! already folds in the code version, the benchmark trace fingerprint,
//! the full config fingerprint, the instruction cap, and the run
//! options — so a lookup by key *is* the cache-validity check for
//! everything except one hazard: the key is a 64-bit hash, and an
//! entry written by an older code version could in principle collide
//! with a current key. Each entry therefore also records the
//! `code_version` string in the clear, and [`ResultStore::lookup`]
//! treats a mismatch as [`Lookup::Stale`] — the entry is deleted, never
//! silently served. (`CE_CODE_VERSION` is how CI distinguishes builds;
//! see [`crate::manifest::code_version`].)
//!
//! Entries are written with [`checkpoint::write_atomic`] (tempfile +
//! rename), so a `kill -9` mid-insert leaves either the old entry or
//! the complete new one, never a torn file. Unparseable entries read
//! back as misses and are deleted. The store takes the code version as
//! an explicit argument rather than reading the environment, so
//! parallel tests (and a daemon serving differently-pinned clients)
//! stay race-free.

use std::path::{Path, PathBuf};

use crate::checkpoint::{
    self, sampled_from_json, sampled_to_json, stats_from_json, stats_to_json,
};
use crate::json::{self, Json};
use crate::runner::TimedResult;
use std::time::Duration;

/// Format marker of a store entry.
const ENTRY_VERSION: u64 = 1;

/// A content-addressed store of completed cell results.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
}

/// Outcome of a store lookup.
#[derive(Debug, Clone)]
pub enum Lookup {
    /// A valid entry for this key and code version. Boxed: a result
    /// carries full stall/occupancy breakdowns, far larger than the
    /// data-free variants.
    Hit(Box<TimedResult>),
    /// No entry (or an unreadable one, which was discarded).
    Miss,
    /// An entry existed but was written by a different code version; it
    /// has been invalidated (deleted), not served.
    Stale,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// The directory-creation error.
    pub fn open(root: &Path) -> std::io::Result<ResultStore> {
        std::fs::create_dir_all(root)?;
        Ok(ResultStore { root: root.to_owned() })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.root.join(format!("{key}.json"))
    }

    /// Looks a cell up by its identity key under the given code version.
    pub fn lookup(&self, key: &str, code_version: &str) -> Lookup {
        let path = self.entry_path(key);
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Lookup::Miss;
        };
        match parse_entry(&text) {
            Some((entry_code, result)) if entry_code == code_version => {
                Lookup::Hit(Box::new(result))
            }
            Some(_) => {
                // Written by another build: a 64-bit key collision across
                // versions must invalidate, not serve.
                let _ = std::fs::remove_file(&path);
                Lookup::Stale
            }
            None => {
                let _ = std::fs::remove_file(&path);
                Lookup::Miss
            }
        }
    }

    /// Stores a cell result under its identity key.
    ///
    /// # Errors
    ///
    /// The underlying write error (callers surface it as `error[io]`; a
    /// failed insert never corrupts an existing entry thanks to the
    /// atomic write).
    pub fn insert(
        &self,
        key: &str,
        code_version: &str,
        result: &TimedResult,
    ) -> std::io::Result<()> {
        let mut entry = format!(
            "{{\"ce_result\": {ENTRY_VERSION}, \"key\": \"{}\", \"code_version\": \"{}\", \
             \"wall_us\": {}, \"stats\": {}",
            json::escape(key),
            json::escape(code_version),
            result.wall.as_micros(),
            stats_to_json(&result.stats),
        );
        if let Some(sampled) = &result.sampled {
            entry.push_str(", \"sampled\": ");
            entry.push_str(&sampled_to_json(sampled));
        }
        entry.push('}');
        checkpoint::write_atomic(&self.entry_path(key), &entry)
    }

    /// Number of entries currently on disk.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.root)
            .map(|dir| {
                dir.flatten()
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Structural validation of one store entry's text against the key its
/// filename claims (`<key>.json`), for `fsck`: the entry must parse
/// completely *and* embed the same key — a mismatch means the file was
/// renamed, truncated-and-rewritten, or otherwise tampered with, and
/// serving it would silently answer the wrong cell.
///
/// # Errors
///
/// A one-line description of what is wrong.
pub fn validate_entry_text(text: &str, key: &str) -> Result<(), String> {
    let doc = Json::parse(text).map_err(|e| format!("unparseable entry: {e}"))?;
    if doc.at("ce_result").and_then(Json::as_u64) != Some(ENTRY_VERSION) {
        return Err("missing or wrong ce_result version tag".into());
    }
    match doc.at("key").and_then(Json::as_str) {
        Some(embedded) if embedded == key => {}
        Some(embedded) => {
            return Err(format!("embedded key {embedded} does not match filename key {key}"))
        }
        None => return Err("entry has no embedded key".into()),
    }
    if parse_entry(text).is_none() {
        return Err("stats block incomplete or ill-typed".into());
    }
    Ok(())
}

fn parse_entry(text: &str) -> Option<(String, TimedResult)> {
    let doc = Json::parse(text).ok()?;
    if doc.at("ce_result").and_then(Json::as_u64) != Some(ENTRY_VERSION) {
        return None;
    }
    let code = doc.at("code_version").and_then(Json::as_str)?.to_owned();
    let stats = stats_from_json(doc.at("stats")?)?;
    let sampled = match doc.at("sampled") {
        Some(s) => Some(sampled_from_json(s)?),
        None => None,
    };
    let wall = Duration::from_micros(doc.at("wall_us").and_then(Json::as_u64)?);
    Some((code, TimedResult { stats, sampled, wall }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::cell_key_with;
    use crate::runner::{run_sweep_ft, RunOptions, SweepOptions};
    use ce_workloads::Benchmark;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("ce-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn one_result() -> TimedResult {
        let jobs = vec![(Benchmark::Compress, ce_sim::machine::baseline_8way())];
        let summary = run_sweep_ft(&jobs, 2_000, &SweepOptions::default()).unwrap();
        summary.cells[0].clone().unwrap()
    }

    /// Round-trip through the store: stats (including histogram and
    /// stall breakdown) and wall time survive; a second lookup still
    /// hits; unknown keys miss.
    #[test]
    fn insert_then_lookup_round_trips() {
        let dir = tmpdir("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty());
        let result = one_result();
        let job = (Benchmark::Compress, ce_sim::machine::baseline_8way());
        let key = cell_key_with("v1", &job, 2_000, RunOptions::default()).unwrap();
        store.insert(&key, "v1", &result).unwrap();
        assert_eq!(store.len(), 1);
        match store.lookup(&key, "v1") {
            Lookup::Hit(got) => {
                assert_eq!(got.stats, result.stats);
                assert_eq!(got.sampled, result.sampled);
                assert_eq!(got.wall.as_micros(), result.wall.as_micros());
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(matches!(store.lookup("feedfacefeedface", "v1"), Lookup::Miss));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The stale-cache hazard regression (satellite 6): an entry written
    /// under one code version is *invalidated* — not served — when looked
    /// up under another, and the file is gone afterwards so the next
    /// lookup is a plain miss that will re-run the cell.
    #[test]
    fn code_version_change_invalidates_instead_of_serving() {
        let dir = tmpdir("stale");
        let store = ResultStore::open(&dir).unwrap();
        let result = one_result();
        store.insert("00deadbeef00", "build-A", &result).unwrap();
        assert!(matches!(store.lookup("00deadbeef00", "build-B"), Lookup::Stale));
        assert_eq!(store.len(), 0, "stale entry must be deleted");
        assert!(matches!(store.lookup("00deadbeef00", "build-B"), Lookup::Miss));
        // Same-version lookups still work end to end.
        store.insert("00deadbeef00", "build-B", &result).unwrap();
        assert!(matches!(store.lookup("00deadbeef00", "build-B"), Lookup::Hit(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Corrupt entries read back as misses and are cleaned up.
    #[test]
    fn corruption_is_a_miss() {
        let dir = tmpdir("corrupt");
        let store = ResultStore::open(&dir).unwrap();
        std::fs::write(store.root().join("abc.json"), "{\"ce_result\": 1, \"tr").unwrap();
        assert!(matches!(store.lookup("abc", "v1"), Lookup::Miss));
        assert_eq!(store.len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
