//! Parallel experiment runner.
//!
//! Every experiment binary reduces to the same shape: a list of
//! `(benchmark, machine configuration)` cells, each simulated
//! independently. This module fans that list across a worker pool
//! ([`std::thread::scope`]; no external crates) and returns results **in
//! input order**, so callers consume them exactly as their old serial
//! loops did.
//!
//! Determinism: the simulator is a pure function of `(config, trace)` and
//! traces come from the process-wide [`trace_cached`] memo, so the result
//! vector is byte-identical regardless of worker count or completion
//! order — `CE_THREADS=1` and `CE_THREADS=32` produce the same output
//! (`tests/runner_determinism.rs` pins this).
//!
//! Worker count comes from the `CE_THREADS` environment variable,
//! defaulting to [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ce_sim::{SimConfig, SimStats, Simulator};
use ce_workloads::{trace_cached, Benchmark};

/// One unit of simulation work: a benchmark kernel on a machine config.
pub type Job = (Benchmark, SimConfig);

/// A completed [`Job`] with its wall-clock cost.
#[derive(Debug, Clone)]
pub struct TimedResult {
    /// The simulation statistics (deterministic per job).
    pub stats: SimStats,
    /// Wall time of the simulation proper (excludes trace generation).
    pub wall: Duration,
}

/// Worker-pool size: `CE_THREADS` if set to a positive integer, else the
/// machine's available parallelism.
pub fn threads() -> usize {
    std::env::var("CE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Runs every job at the [`crate::max_insts`] cap and returns the
/// statistics in input order.
pub fn run_all(jobs: &[Job]) -> Vec<SimStats> {
    run_timed(jobs, crate::max_insts()).into_iter().map(|r| r.stats).collect()
}

/// Runs every job at an explicit instruction cap, returning per-cell wall
/// times alongside the statistics, in input order.
///
/// # Panics
///
/// Panics on the first failed cell (invalid configuration or a kernel that
/// fails to trace), naming it. Sweeps that probe risky configuration
/// corners should use [`try_run_timed`] instead and keep the good cells.
pub fn run_timed(jobs: &[Job], max_insts: u64) -> Vec<TimedResult> {
    try_run_timed(jobs, max_insts)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .collect()
}

/// Like [`run_timed`], but a bad grid cell becomes an `Err` naming the
/// cell instead of aborting the whole parallel run: each job's
/// configuration is validated (via [`Simulator::try_new`]) and its kernel
/// traced inside the job's own `Result`. Results stay in input order.
///
/// # Panics
///
/// Panics only if a worker thread itself panics (a simulator bug, not a
/// bad configuration).
pub fn try_run_timed(jobs: &[Job], max_insts: u64) -> Vec<Result<TimedResult, String>> {
    let n = jobs.len();
    let workers = threads().min(n.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<TimedResult, String>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let (bench, cfg) = jobs[i];
                let result = Simulator::try_new(cfg)
                    .map_err(|e| format!("job {i} ({bench}): {e}"))
                    .and_then(|sim| {
                        let trace = trace_cached(bench, max_insts)
                            .map_err(|e| format!("job {i} ({bench}): tracing failed: {e}"))?;
                        let start = Instant::now();
                        let stats = sim.run(&trace);
                        Ok(TimedResult { stats, wall: start.elapsed() })
                    });
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("result slot poisoned").expect("worker filled every slot")
        })
        .collect()
}

/// Convenience: the full `machines × benchmarks` grid in row-major
/// (benchmark-major) order, matching the serial loops the experiment
/// binaries used to run.
pub fn grid(machines: &[(&'static str, SimConfig)]) -> Vec<Job> {
    let mut jobs = Vec::with_capacity(machines.len() * 7);
    for bench in Benchmark::all() {
        for (_, cfg) in machines {
            jobs.push((bench, *cfg));
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
    }

    /// A bad grid cell must be reported by name while its neighbours still
    /// run — an invalid corner of a sweep used to panic a worker thread
    /// and take the whole parallel run down with it.
    #[test]
    fn bad_cells_fail_individually_not_collectively() {
        use ce_sim::machine;
        let mut bad = machine::baseline_8way();
        bad.bpred.history_bits = 40;
        let jobs = vec![
            (Benchmark::Compress, machine::baseline_8way()),
            (Benchmark::Li, bad),
            (Benchmark::Compress, machine::dependence_8way()),
        ];
        let results = try_run_timed(&jobs, 2_000);
        assert!(results[0].is_ok());
        assert!(results[2].is_ok());
        let err = results[1].as_ref().unwrap_err();
        assert!(err.contains("job 1"), "{err}");
        assert!(err.contains("li"), "{err}");
        assert!(err.contains("history"), "{err}");
    }

    #[test]
    fn results_arrive_in_input_order() {
        use ce_sim::machine;
        let jobs = vec![
            (Benchmark::Compress, machine::baseline_8way()),
            (Benchmark::Li, machine::baseline_8way()),
            (Benchmark::Compress, machine::dependence_8way()),
        ];
        let parallel = run_timed(&jobs, 5_000);
        assert_eq!(parallel.len(), jobs.len());
        for (i, (bench, cfg)) in jobs.iter().enumerate() {
            let trace = trace_cached(*bench, 5_000).unwrap();
            let serial = Simulator::new(*cfg).run(&trace);
            assert_eq!(parallel[i].stats, serial, "job {i} out of order or nondeterministic");
        }
    }
}
