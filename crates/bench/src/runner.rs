//! Parallel experiment runner.
//!
//! Every experiment binary reduces to the same shape: a list of
//! `(benchmark, machine configuration)` cells, each simulated
//! independently. This module fans that list across a worker pool
//! ([`std::thread::scope`]; no external crates) and returns results **in
//! input order**, so callers consume them exactly as their old serial
//! loops did.
//!
//! Determinism: the simulator is a pure function of `(config, trace)` and
//! traces come from the process-wide [`trace_cached`] memo, so the result
//! vector is byte-identical regardless of worker count or completion
//! order — `CE_THREADS=1` and `CE_THREADS=32` produce the same output
//! (`tests/runner_determinism.rs` pins this).
//!
//! Worker count comes from the `CE_THREADS` environment variable,
//! defaulting to [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ce_sim::{SimConfig, SimStats, Simulator};
use ce_workloads::{trace_cached, Benchmark};

/// One unit of simulation work: a benchmark kernel on a machine config.
pub type Job = (Benchmark, SimConfig);

/// Per-run knobs applied uniformly to every job of a sweep.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Enable the stall-attribution accountant on every cell (fills
    /// `SimStats::stall_breakdown`; timing is unchanged, wall time pays a
    /// small bookkeeping cost).
    pub attribution: bool,
}

/// A completed [`Job`] with its wall-clock cost.
#[derive(Debug, Clone)]
pub struct TimedResult {
    /// The simulation statistics (deterministic per job).
    pub stats: SimStats,
    /// Wall time of the simulation proper (excludes trace generation).
    pub wall: Duration,
}

impl TimedResult {
    /// Simulation throughput for this cell, in millions of simulated
    /// cycles per wall-clock second.
    pub fn mcycles_per_s(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.stats.cycles as f64 / secs / 1e6
        } else {
            0.0
        }
    }
}

/// Aggregate wall-clock accounting for one sweep, as returned by
/// [`run_sweep`]. All durations are wall time of the simulations alone
/// (trace generation is memoized and excluded).
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Per-cell results, in input order.
    pub cells: Vec<TimedResult>,
    /// Wall time of the whole parallel sweep.
    pub sweep_wall: Duration,
    /// Sum of the individual cell wall times (what a serial run would
    /// roughly cost).
    pub serial_cell_wall: Duration,
    /// Total simulated cycles across all cells.
    pub total_cycles: u64,
    /// Fastest individual cell.
    pub min_cell_wall: Duration,
    /// Slowest individual cell (the sweep's critical path lower bound).
    pub max_cell_wall: Duration,
}

impl SweepSummary {
    /// Aggregate throughput: total simulated cycles over summed cell wall
    /// time, in millions of cycles per second. This is the simulator's
    /// single-thread speed, independent of how many workers ran.
    pub fn sim_mcycles_per_s(&self) -> f64 {
        let secs = self.serial_cell_wall.as_secs_f64();
        if secs > 0.0 {
            self.total_cycles as f64 / secs / 1e6
        } else {
            0.0
        }
    }
}

/// Worker-pool size: `CE_THREADS` if set to a positive integer, else the
/// machine's available parallelism.
pub fn threads() -> usize {
    std::env::var("CE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Runs every job at the [`crate::max_insts`] cap and returns the
/// statistics in input order.
pub fn run_all(jobs: &[Job]) -> Vec<SimStats> {
    run_timed(jobs, crate::max_insts()).into_iter().map(|r| r.stats).collect()
}

/// Runs every job at an explicit instruction cap, returning per-cell wall
/// times alongside the statistics, in input order.
///
/// # Panics
///
/// Panics on the first failed cell (invalid configuration or a kernel that
/// fails to trace), naming it. Sweeps that probe risky configuration
/// corners should use [`try_run_timed`] instead and keep the good cells.
pub fn run_timed(jobs: &[Job], max_insts: u64) -> Vec<TimedResult> {
    run_timed_with(jobs, max_insts, RunOptions::default())
}

/// [`run_timed`] with explicit [`RunOptions`] (e.g. stall attribution on
/// every cell).
///
/// # Panics
///
/// Panics on the first failed cell, like [`run_timed`].
pub fn run_timed_with(jobs: &[Job], max_insts: u64, opts: RunOptions) -> Vec<TimedResult> {
    try_run_timed_with(jobs, max_insts, opts)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .collect()
}

/// Runs a sweep with aggregate wall-clock accounting: per-cell results
/// plus sweep wall time, summed cell time, and min/max cell times, for
/// throughput reporting alongside experiment tables.
///
/// # Panics
///
/// Panics on the first failed cell, like [`run_timed`]. Panics if `jobs`
/// is empty (a sweep with no cells has no meaningful summary).
pub fn run_sweep(jobs: &[Job], max_insts: u64, opts: RunOptions) -> SweepSummary {
    assert!(!jobs.is_empty(), "run_sweep needs at least one job");
    let start = Instant::now();
    let cells = run_timed_with(jobs, max_insts, opts);
    let sweep_wall = start.elapsed();
    let serial_cell_wall = cells.iter().map(|c| c.wall).sum();
    let total_cycles = cells.iter().map(|c| c.stats.cycles).sum();
    let min_cell_wall = cells.iter().map(|c| c.wall).min().expect("nonempty");
    let max_cell_wall = cells.iter().map(|c| c.wall).max().expect("nonempty");
    SweepSummary { cells, sweep_wall, serial_cell_wall, total_cycles, min_cell_wall, max_cell_wall }
}

/// Like [`run_timed`], but a bad grid cell becomes an `Err` naming the
/// cell instead of aborting the whole parallel run: each job's
/// configuration is validated (via [`Simulator::try_new`]) and its kernel
/// traced inside the job's own `Result`. Results stay in input order.
///
/// # Panics
///
/// Panics only if a worker thread itself panics (a simulator bug, not a
/// bad configuration).
pub fn try_run_timed(jobs: &[Job], max_insts: u64) -> Vec<Result<TimedResult, String>> {
    try_run_timed_with(jobs, max_insts, RunOptions::default())
}

/// [`try_run_timed`] with explicit [`RunOptions`].
///
/// # Panics
///
/// Panics only if a worker thread itself panics (a simulator bug, not a
/// bad configuration).
pub fn try_run_timed_with(
    jobs: &[Job],
    max_insts: u64,
    opts: RunOptions,
) -> Vec<Result<TimedResult, String>> {
    let n = jobs.len();
    let workers = threads().min(n.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<TimedResult, String>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let (bench, mut cfg) = jobs[i];
                cfg.attribution |= opts.attribution;
                let result = Simulator::try_new(cfg)
                    .map_err(|e| format!("job {i} ({bench}): {e}"))
                    .and_then(|sim| {
                        let trace = trace_cached(bench, max_insts)
                            .map_err(|e| format!("job {i} ({bench}): tracing failed: {e}"))?;
                        let start = Instant::now();
                        let stats = sim.run(&trace);
                        Ok(TimedResult { stats, wall: start.elapsed() })
                    });
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("result slot poisoned").expect("worker filled every slot")
        })
        .collect()
}

/// Convenience: the full `machines × benchmarks` grid in row-major
/// (benchmark-major) order, matching the serial loops the experiment
/// binaries used to run.
pub fn grid(machines: &[(&'static str, SimConfig)]) -> Vec<Job> {
    let mut jobs = Vec::with_capacity(machines.len() * 7);
    for bench in Benchmark::all() {
        for (_, cfg) in machines {
            jobs.push((bench, *cfg));
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
    }

    /// A bad grid cell must be reported by name while its neighbours still
    /// run — an invalid corner of a sweep used to panic a worker thread
    /// and take the whole parallel run down with it.
    #[test]
    fn bad_cells_fail_individually_not_collectively() {
        use ce_sim::machine;
        let mut bad = machine::baseline_8way();
        bad.bpred.history_bits = 40;
        let jobs = vec![
            (Benchmark::Compress, machine::baseline_8way()),
            (Benchmark::Li, bad),
            (Benchmark::Compress, machine::dependence_8way()),
        ];
        let results = try_run_timed(&jobs, 2_000);
        assert!(results[0].is_ok());
        assert!(results[2].is_ok());
        let err = results[1].as_ref().unwrap_err();
        assert!(err.contains("job 1"), "{err}");
        assert!(err.contains("li"), "{err}");
        assert!(err.contains("history"), "{err}");
    }

    /// Attribution requested through [`RunOptions`] fills the breakdown
    /// without perturbing the timing result, and [`run_sweep`]'s
    /// aggregates are consistent with its cells.
    #[test]
    fn attribution_option_fills_breakdown_without_changing_timing() {
        use ce_sim::machine;
        let jobs = vec![
            (Benchmark::Compress, machine::baseline_8way()),
            (Benchmark::Compress, machine::clustered_fifos_8way()),
        ];
        let plain = run_timed(&jobs, 5_000);
        let summary = run_sweep(&jobs, 5_000, RunOptions { attribution: true });
        assert_eq!(summary.cells.len(), jobs.len());
        let mut total_cycles = 0;
        for (i, (cell, base)) in summary.cells.iter().zip(&plain).enumerate() {
            assert_eq!(cell.stats.fingerprint(), base.stats.fingerprint(), "cell {i}");
            assert!(cell.stats.stall_breakdown.reconciles(
                jobs[i].1.issue_width,
                cell.stats.cycles,
                cell.stats.issued
            ));
            assert!(base.stats.stall_breakdown.is_empty(), "cell {i} charged without opt-in");
            assert!(cell.wall >= summary.min_cell_wall && cell.wall <= summary.max_cell_wall);
            total_cycles += cell.stats.cycles;
        }
        assert_eq!(summary.total_cycles, total_cycles);
        assert_eq!(
            summary.serial_cell_wall,
            summary.cells.iter().map(|c| c.wall).sum::<Duration>()
        );
        assert!(summary.sim_mcycles_per_s() > 0.0);
    }

    #[test]
    fn results_arrive_in_input_order() {
        use ce_sim::machine;
        let jobs = vec![
            (Benchmark::Compress, machine::baseline_8way()),
            (Benchmark::Li, machine::baseline_8way()),
            (Benchmark::Compress, machine::dependence_8way()),
        ];
        let parallel = run_timed(&jobs, 5_000);
        assert_eq!(parallel.len(), jobs.len());
        for (i, (bench, cfg)) in jobs.iter().enumerate() {
            let trace = trace_cached(*bench, 5_000).unwrap();
            let serial = Simulator::new(*cfg).run(&trace);
            assert_eq!(parallel[i].stats, serial, "job {i} out of order or nondeterministic");
        }
    }
}
