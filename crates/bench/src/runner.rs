//! Parallel experiment runner.
//!
//! Every experiment binary reduces to the same shape: a list of
//! `(benchmark, machine configuration)` cells, each simulated
//! independently. This module fans that list across a worker pool
//! ([`std::thread::scope`]; no external crates) and returns results **in
//! input order**, so callers consume them exactly as their old serial
//! loops did.
//!
//! Determinism: the simulator is a pure function of `(config, trace)` and
//! traces come from the process-wide [`trace_cached`] memo, so the result
//! vector is byte-identical regardless of worker count or completion
//! order — `CE_THREADS=1` and `CE_THREADS=32` produce the same output
//! (`tests/runner_determinism.rs` pins this).
//!
//! Worker count comes from the `CE_THREADS` environment variable,
//! defaulting to [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ce_sim::{SimConfig, SimStats, Simulator};
use ce_workloads::{trace_cached, Benchmark};

/// One unit of simulation work: a benchmark kernel on a machine config.
pub type Job = (Benchmark, SimConfig);

/// A completed [`Job`] with its wall-clock cost.
#[derive(Debug, Clone)]
pub struct TimedResult {
    /// The simulation statistics (deterministic per job).
    pub stats: SimStats,
    /// Wall time of the simulation proper (excludes trace generation).
    pub wall: Duration,
}

/// Worker-pool size: `CE_THREADS` if set to a positive integer, else the
/// machine's available parallelism.
pub fn threads() -> usize {
    std::env::var("CE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Runs every job at the [`crate::max_insts`] cap and returns the
/// statistics in input order.
pub fn run_all(jobs: &[Job]) -> Vec<SimStats> {
    run_timed(jobs, crate::max_insts()).into_iter().map(|r| r.stats).collect()
}

/// Runs every job at an explicit instruction cap, returning per-cell wall
/// times alongside the statistics, in input order.
///
/// # Panics
///
/// Panics if a bundled kernel fails to trace (a `ce-workloads` bug) or a
/// worker thread panics.
pub fn run_timed(jobs: &[Job], max_insts: u64) -> Vec<TimedResult> {
    let n = jobs.len();
    let workers = threads().min(n.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<TimedResult>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let (bench, cfg) = jobs[i];
                let trace = trace_cached(bench, max_insts)
                    .unwrap_or_else(|e| panic!("tracing {bench}: {e}"));
                let start = Instant::now();
                let stats = Simulator::new(cfg).run(&trace);
                let wall = start.elapsed();
                *slots[i].lock().expect("result slot poisoned") =
                    Some(TimedResult { stats, wall });
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("result slot poisoned").expect("worker filled every slot")
        })
        .collect()
}

/// Convenience: the full `machines × benchmarks` grid in row-major
/// (benchmark-major) order, matching the serial loops the experiment
/// binaries used to run.
pub fn grid(machines: &[(&'static str, SimConfig)]) -> Vec<Job> {
    let mut jobs = Vec::with_capacity(machines.len() * 7);
    for bench in Benchmark::all() {
        for (_, cfg) in machines {
            jobs.push((bench, *cfg));
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
    }

    #[test]
    fn results_arrive_in_input_order() {
        use ce_sim::machine;
        let jobs = vec![
            (Benchmark::Compress, machine::baseline_8way()),
            (Benchmark::Li, machine::baseline_8way()),
            (Benchmark::Compress, machine::dependence_8way()),
        ];
        let parallel = run_timed(&jobs, 5_000);
        assert_eq!(parallel.len(), jobs.len());
        for (i, (bench, cfg)) in jobs.iter().enumerate() {
            let trace = trace_cached(*bench, 5_000).unwrap();
            let serial = Simulator::new(*cfg).run(&trace);
            assert_eq!(parallel[i].stats, serial, "job {i} out of order or nondeterministic");
        }
    }
}
