//! Fault-tolerant parallel experiment runner.
//!
//! Every experiment binary reduces to the same shape: a list of
//! `(benchmark, machine configuration)` cells, each simulated
//! independently. This module fans that list across a worker pool
//! ([`std::thread::scope`]; no external crates) and returns results **in
//! input order**, so callers consume them exactly as their old serial
//! loops did.
//!
//! Determinism: the simulator is a pure function of `(config, trace)` and
//! traces come from the process-wide [`trace_cached`] memo, so the result
//! vector is byte-identical regardless of worker count or completion
//! order — `CE_THREADS=1` and `CE_THREADS=32` produce the same output
//! (`tests/runner_determinism.rs` pins this).
//!
//! ## Fault tolerance
//!
//! A sweep is hours of compute; one bad cell must cost one cell, not the
//! sweep. Failures are classified into a [`RunError`] taxonomy and
//! contained per cell:
//!
//! - **Panic isolation** — each cell runs under
//!   [`std::panic::catch_unwind`] on a worker thread named `ce-cell-*`; a
//!   process-wide panic hook keeps those threads' panics off stderr (the
//!   failure is *reported*, in the result, not *printed* mid-table).
//! - **Deadlines** — [`RunPolicy::cell_timeout`] arms the simulator's
//!   cycle-loop deadline so a pathological cell returns
//!   [`Timeout`](RunError::Timeout) instead of hanging a worker.
//! - **Retry with backoff** — transient failures (only timeouts qualify)
//!   are retried up to [`RunPolicy::max_attempts`] times with exponential
//!   backoff; deterministic failures are never retried.
//! - **Quarantine** — once a job fails deterministically, later cells with
//!   the *same* `(benchmark, config)` fail fast with the recorded error
//!   instead of re-running a known-bad input.
//! - **Checkpoint/resume** — [`run_sweep_ft`] journals each completed cell
//!   (see [`crate::checkpoint`]) so a killed sweep resumes where it died.
//!
//! Worker count comes from the `CE_THREADS` environment variable,
//! defaulting to [`std::thread::available_parallelism`] — sweeps are
//! parallel out of the box. Workers pull cells **longest-first** (see
//! [`schedule_order`]): cost-sorted dispatch keeps the expensive
//! gcc/m88ksim central-window cells off the tail, so the idle tail with
//! `T` workers is bounded by one short cell instead of one long one. The
//! dispatch order and thread count are surfaced in [`SweepSummary`] and
//! recorded in BENCH_sim.json.

use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ce_sim::{
    try_run_sampled, SampleError, SampledStats, SamplingConfig, SimConfig, SimError, SimStats,
    Simulator,
};
use ce_workloads::{trace_cached, Benchmark};

use crate::checkpoint::{sweep_id, CheckpointSpec, Journal};
use crate::telemetry::{Event, Telemetry, TelemetrySink as _};

/// One unit of simulation work: a benchmark kernel on a machine config.
pub type Job = (Benchmark, SimConfig);

/// Why one cell of a sweep failed. The taxonomy separates *whose fault it
/// was* (a bad config, a bad input file, a simulator bug, a resource
/// limit, a correctness violation) because each category has a different
/// remedy, a different retry policy, and a different exit code upstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The configuration failed validation ([`Simulator::try_new`]).
    ConfigInvalid(String),
    /// The workload could not be traced or its trace file was rejected.
    TraceCorrupt(String),
    /// The cell panicked — a simulator bug, contained to this cell.
    CellPanic(String),
    /// The cell exceeded its deadline (or deadlocked) before finishing.
    Timeout(String),
    /// The invariant checker found the simulated state inconsistent.
    CheckerViolation(String),
    /// A checkpoint, journal, or result-store write failed at the disk
    /// layer (disk full, permissions, torn volume). Carries the
    /// [`std::io::ErrorKind`] so callers can distinguish recoverable
    /// conditions without string matching.
    Io { kind: std::io::ErrorKind, message: String },
}

impl RunError {
    /// Stable machine-readable category name (reports, CI greps).
    pub fn category(&self) -> &'static str {
        match self {
            RunError::ConfigInvalid(_) => "config-invalid",
            RunError::TraceCorrupt(_) => "trace-corrupt",
            RunError::CellPanic(_) => "cell-panic",
            RunError::Timeout(_) => "timeout",
            RunError::CheckerViolation(_) => "checker-violation",
            RunError::Io { .. } => "io",
        }
    }

    /// The underlying message, without the category prefix.
    pub fn message(&self) -> &str {
        match self {
            RunError::ConfigInvalid(m)
            | RunError::TraceCorrupt(m)
            | RunError::CellPanic(m)
            | RunError::Timeout(m)
            | RunError::CheckerViolation(m) => m,
            RunError::Io { message, .. } => message,
        }
    }

    /// Wraps a disk-layer failure, preserving the [`std::io::ErrorKind`]
    /// and naming what was being written when it failed.
    pub fn io(context: &str, e: &std::io::Error) -> RunError {
        RunError::Io { kind: e.kind(), message: format!("{context}: {e}") }
    }

    /// Whether retrying the same cell could plausibly succeed. Only
    /// timeouts qualify: wall-clock deadlines depend on machine load,
    /// while config, trace, panic, and checker failures are deterministic
    /// functions of the input and would fail identically again. I/O
    /// failures are *not* retried per-cell — a full disk fails every
    /// subsequent write too, and retrying just burns the backoff budget.
    pub fn is_transient(&self) -> bool {
        matches!(self, RunError::Timeout(_))
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.category(), self.message())
    }
}

impl std::error::Error for RunError {}

/// Maps a structured simulator error onto the runner taxonomy.
fn classify_sim_error(e: &SimError) -> RunError {
    match e {
        SimError::Checker { .. } => RunError::CheckerViolation(e.to_string()),
        // A deadlock is "the cell did not finish within its cycle budget" —
        // operationally the same as a deadline: the cell is aborted and the
        // sweep moves on.
        SimError::Deadlock { .. } | SimError::DeadlineExceeded { .. } => {
            RunError::Timeout(e.to_string())
        }
    }
}

/// Classifies a caught panic payload. Panics that are really checker or
/// deadlock reports funneled through `panic!` (the legacy
/// [`Simulator::run`] path) keep their category; everything else is a
/// contained simulator bug.
fn classify_panic(payload: Box<dyn std::any::Any + Send>) -> RunError {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "panicked with a non-string payload".to_string());
    if msg.contains("invariant checker") {
        RunError::CheckerViolation(msg)
    } else if msg.contains("deadlock at cycle") {
        RunError::Timeout(msg)
    } else {
        RunError::CellPanic(msg)
    }
}

/// Per-run knobs applied uniformly to every job of a sweep.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Enable the stall-attribution accountant on every cell (fills
    /// `SimStats::stall_breakdown`; timing is unchanged, wall time pays a
    /// small bookkeeping cost).
    pub attribution: bool,
    /// Run every cell under sampled simulation with this geometry instead
    /// of a full detailed run (see [`ce_sim::run_sampled`]). The cell's
    /// [`TimedResult::stats`] then carries the *estimated* cycle count and
    /// the whole-trace instruction count (so `SimStats::ipc` is the
    /// sampled IPC estimate), with the full [`SampledStats`] in
    /// [`TimedResult::sampled`]. Sampled cells are not bounded by
    /// [`RunPolicy::cell_timeout`] — the detailed windows they run are a
    /// small fraction of a full run. Changing this (like any option)
    /// changes the sweep id, so exact and sampled journals never mix.
    pub sampled: Option<SamplingConfig>,
}

/// Failure-handling policy for a sweep.
#[derive(Debug, Clone, Copy)]
pub struct RunPolicy {
    /// Per-cell wall-clock deadline; `None` (the default) lets cells run
    /// to completion.
    pub cell_timeout: Option<Duration>,
    /// Attempts per cell for *transient* failures (≥ 1). Deterministic
    /// failures always fail on the first attempt.
    pub max_attempts: u32,
    /// Sleep before retry `k` is `backoff_base × 2^(k−1)`.
    pub backoff_base: Duration,
    /// Fail duplicate jobs fast once one instance failed deterministically.
    pub quarantine: bool,
}

impl Default for RunPolicy {
    fn default() -> RunPolicy {
        RunPolicy {
            cell_timeout: None,
            max_attempts: 3,
            backoff_base: Duration::from_millis(50),
            quarantine: true,
        }
    }
}

/// A completed [`Job`] with its wall-clock cost.
#[derive(Debug, Clone)]
pub struct TimedResult {
    /// The simulation statistics (deterministic per job). For a sampled
    /// cell ([`RunOptions::sampled`]) only `cycles` (the estimate) and
    /// `committed` (the whole trace) are populated; the detailed counters
    /// of the measurement windows are not whole-trace quantities and are
    /// left zero rather than reported misleadingly.
    pub stats: SimStats,
    /// The sampling measurement behind `stats`, when the cell ran under
    /// [`RunOptions::sampled`]; `None` for exact cells.
    pub sampled: Option<SampledStats>,
    /// Wall time of the simulation proper (excludes trace generation).
    pub wall: Duration,
}

impl TimedResult {
    /// Simulation throughput for this cell, in millions of simulated
    /// cycles per wall-clock second.
    pub fn mcycles_per_s(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.stats.cycles as f64 / secs / 1e6
        } else {
            0.0
        }
    }
}

/// One failed cell of a sweep: what failed, why, and how hard the runner
/// tried before giving up.
#[derive(Debug, Clone)]
pub struct CellFailure {
    /// Input-order index of the cell.
    pub index: usize,
    /// The benchmark half of the job (the config half is `jobs[index].1`).
    pub bench: Benchmark,
    /// The classified failure.
    pub error: RunError,
    /// Attempts actually made (0 when quarantined — never run at all).
    pub attempts: u32,
    /// `Some(i)` if this cell never ran because the identical job already
    /// failed deterministically at cell `i`.
    pub quarantined_after: Option<usize>,
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.quarantined_after {
            Some(first) => write!(
                f,
                "cell {} ({}): quarantined, identical job failed at cell {first}: {}",
                self.index, self.bench, self.error
            ),
            None => write!(
                f,
                "cell {} ({}): {} ({} attempt{})",
                self.index,
                self.bench,
                self.error,
                self.attempts,
                if self.attempts == 1 { "" } else { "s" }
            ),
        }
    }
}

/// A callback invoked from worker threads as each *freshly simulated*
/// cell completes (never for cells recovered from a checkpoint or
/// supplied via [`SweepOptions::prefill`]). The experiment service hangs
/// its result-store writes off this hook so every finished cell is
/// durable the moment it exists, independent of the checkpoint journal.
#[derive(Clone, Default)]
pub struct CellHook(pub Option<CellHookFn>);

/// The shared callback type inside a [`CellHook`].
pub type CellHookFn = std::sync::Arc<dyn Fn(usize, &TimedResult) + Send + Sync>;

impl CellHook {
    /// Wraps a closure into a hook.
    pub fn new(f: impl Fn(usize, &TimedResult) + Send + Sync + 'static) -> CellHook {
        CellHook(Some(std::sync::Arc::new(f)))
    }

    /// Invokes the hook if one is set.
    pub fn call(&self, index: usize, result: &TimedResult) {
        if let Some(f) = &self.0 {
            f(index, result);
        }
    }
}

impl fmt::Debug for CellHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() { "CellHook(set)" } else { "CellHook(none)" })
    }
}

/// How [`run_sweep_ft`] should run: per-cell options, failure policy, and
/// optional checkpointing.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Per-cell simulation options.
    pub run: RunOptions,
    /// Failure-handling policy.
    pub policy: RunPolicy,
    /// Journal completed cells here (and resume from it when its `resume`
    /// flag is set). `None` disables checkpointing.
    pub checkpoint: Option<CheckpointSpec>,
    /// Engine telemetry sink (see [`crate::telemetry`]). The default
    /// disabled handle costs one branch per would-be event; enabled
    /// telemetry observes timing only and can never change results.
    /// Deliberately *not* part of [`RunOptions`]: the sweep id and the
    /// cache key hash those, and observability must not invalidate
    /// checkpoints.
    pub telemetry: Telemetry,
    /// Cells already known from an external source (the content-addressed
    /// result store): `prefill[i] = Some(r)` marks cell `i` as done before
    /// the sweep starts, exactly like a checkpoint-recovered cell (it
    /// counts toward [`SweepSummary::resumed`] and emits `CellResumed`).
    /// Empty (the default) prefills nothing; otherwise the length must
    /// equal the job count. Checkpoint recovery wins where both supply a
    /// cell.
    pub prefill: Vec<Option<TimedResult>>,
    /// Invoked as each freshly simulated cell completes (see
    /// [`CellHook`]); never called for prefilled or journal-recovered
    /// cells, so a store writer behind it cannot re-store served entries.
    pub on_cell: CellHook,
}

/// Aggregate result of one sweep, as returned by [`run_sweep_ft`] /
/// [`run_sweep`]. All durations are wall time of the simulations alone
/// (trace generation is memoized and excluded); cells recovered from a
/// checkpoint contribute their journaled wall times.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Per-cell results, in input order; `None` where the cell failed
    /// (see [`failures`](SweepSummary::failures) for why).
    pub cells: Vec<Option<TimedResult>>,
    /// Every failed cell, in input order. Empty on a fully-clean sweep.
    pub failures: Vec<CellFailure>,
    /// How many cells were recovered from the checkpoint journal instead
    /// of being re-simulated.
    pub resumed: usize,
    /// Wall time of the whole parallel sweep.
    pub sweep_wall: Duration,
    /// Sum of the individual cell wall times (what a serial run would
    /// roughly cost).
    pub serial_cell_wall: Duration,
    /// Total simulated cycles across all completed cells.
    pub total_cycles: u64,
    /// Fastest completed cell ([`Duration::ZERO`] if none completed).
    pub min_cell_wall: Duration,
    /// Slowest completed cell (the sweep's critical path lower bound).
    pub max_cell_wall: Duration,
    /// Worker threads the sweep ran with.
    pub threads: usize,
    /// The longest-cell-first dispatch order actually used: `schedule[k]`
    /// is the input-order index of the `k`-th cell handed to a worker.
    /// Recorded in BENCH_sim.json so bench gates reproduce across
    /// machines.
    pub schedule: Vec<usize>,
}

impl SweepSummary {
    /// The completed cells, in input order.
    pub fn ok_cells(&self) -> impl Iterator<Item = &TimedResult> {
        self.cells.iter().flatten()
    }

    /// Whether every cell completed.
    pub fn all_ok(&self) -> bool {
        self.failures.is_empty() && self.cells.iter().all(Option::is_some)
    }

    /// Aggregate throughput: total simulated cycles over summed cell wall
    /// time, in millions of cycles per second. This is the simulator's
    /// single-thread speed, independent of how many workers ran.
    pub fn sim_mcycles_per_s(&self) -> f64 {
        let secs = self.serial_cell_wall.as_secs_f64();
        if secs > 0.0 {
            self.total_cycles as f64 / secs / 1e6
        } else {
            0.0
        }
    }
}

/// Estimated relative cost of one cell, for scheduling only. Dominant
/// term: how many instructions the cell will actually simulate (the
/// kernel's natural length, clamped by the cap). Windowed schedulers scan
/// wider wakeup/select structures per cycle than the FIFO machines, so
/// they get a constant weighting on top. Exactness is irrelevant — the
/// estimate only decides *queue order*, never results.
fn cell_cost((bench, cfg): &Job, max_insts: u64) -> u64 {
    let insts = bench.approx_dynamic_insts().min(max_insts);
    let weight = match cfg.scheduler {
        ce_sim::SchedulerKind::Fifos { .. } => 2,
        _ => 3,
    };
    insts * weight
}

/// Longest-cell-first queue order for a sweep: indices into `jobs`,
/// sorted by estimated cost, descending (stable, so equal-cost cells keep
/// input order). Workers pull cells in this order, which keeps the
/// expensive gcc/m88ksim central-window cells off the tail of the sweep —
/// with `T` workers, the worst idle tail is one *short* cell instead of
/// one long one. Results are still returned in input order; this is purely
/// the dispatch sequence, and it is recorded in BENCH_sim.json so a bench
/// gate can be reproduced schedule-and-all on another machine.
pub fn schedule_order(jobs: &[Job], max_insts: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(cell_cost(&jobs[i], max_insts)));
    order
}

/// The per-cell cost estimates behind [`schedule_order`], in input order.
/// The telemetry progress line weights its ETA with these — the same
/// estimates that decide dispatch order — so progress tracks simulated
/// work, not cell count.
pub fn cell_weights(jobs: &[Job], max_insts: u64) -> Vec<u64> {
    jobs.iter().map(|job| cell_cost(job, max_insts)).collect()
}

/// Worker-pool size: `CE_THREADS` if set to a positive integer, else the
/// machine's available parallelism.
pub fn threads() -> usize {
    std::env::var("CE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Installs (once, process-wide) a panic hook that suppresses the default
/// stderr report for worker threads named `ce-cell-*`. Their panics are
/// caught, classified, and *returned*; printing a backtrace mid-sweep
/// would interleave garbage into experiment tables. All other threads
/// keep the previous hook's behaviour.
pub(crate) fn install_cell_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_cell = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("ce-cell"));
            if !in_cell {
                previous(info);
            }
        }));
    });
}

/// Maps a sampled-run error onto the runner taxonomy: invalid machine
/// configurations and invalid sampling geometries are both the caller's
/// configuration at fault; window failures classify like any sim error.
fn classify_sample_error(e: &SampleError) -> RunError {
    match e {
        SampleError::Config(_) | SampleError::Sampling(_) => {
            RunError::ConfigInvalid(e.to_string())
        }
        SampleError::Sim(sim) => classify_sim_error(sim),
    }
}

/// Runs one cell once: validate, trace, arm the deadline, simulate under
/// `catch_unwind`. With `sampled` set the cell runs the sampled estimator
/// instead of a full detailed run (no deadline: the detailed windows are a
/// bounded fraction of the trace).
fn run_cell(
    bench: Benchmark,
    cfg: SimConfig,
    max_insts: u64,
    timeout: Option<Duration>,
    sampled: Option<SamplingConfig>,
) -> Result<TimedResult, RunError> {
    let mut sim =
        Simulator::try_new(cfg).map_err(|e| RunError::ConfigInvalid(e.to_string()))?;
    let trace = trace_cached(bench, max_insts)
        .map_err(|e| RunError::TraceCorrupt(format!("tracing failed: {e}")))?;
    if let Some(sampling) = sampled {
        let start = Instant::now();
        return match catch_unwind(AssertUnwindSafe(|| try_run_sampled(cfg, &trace, sampling))) {
            Ok(Ok(s)) => Ok(TimedResult {
                stats: SimStats {
                    cycles: s.est_cycles,
                    committed: s.total_insts,
                    ..SimStats::default()
                },
                sampled: Some(s),
                wall: start.elapsed(),
            }),
            Ok(Err(e)) => Err(classify_sample_error(&e)),
            Err(payload) => Err(classify_panic(payload)),
        };
    }
    if let Some(limit) = timeout {
        sim.set_deadline(limit);
    }
    let start = Instant::now();
    match catch_unwind(AssertUnwindSafe(move || sim.try_run(&trace))) {
        Ok(Ok(stats)) => Ok(TimedResult { stats, sampled: None, wall: start.elapsed() }),
        Ok(Err(e)) => Err(classify_sim_error(&e)),
        Err(payload) => Err(classify_panic(payload)),
    }
}

/// [`run_cell`] under the retry policy, narrated to the telemetry sink:
/// every attempt gets a start/end span (the end marked `last` when no
/// retry follows) and every retry sleep a backoff event. Returns the
/// final outcome and how many attempts were made.
fn run_cell_with_retry(
    cell: usize,
    worker: usize,
    (bench, cfg): Job,
    max_insts: u64,
    policy: &RunPolicy,
    sampled: Option<SamplingConfig>,
    tel: &Telemetry,
) -> (Result<TimedResult, RunError>, u32) {
    let max_attempts = policy.max_attempts.max(1);
    let mut attempt = 1;
    loop {
        if tel.enabled() {
            tel.emit(Event::AttemptStart { cell, bench, worker, attempt });
        }
        let start = Instant::now();
        let outcome = run_cell(bench, cfg, max_insts, policy.cell_timeout, sampled);
        let retrying = matches!(&outcome, Err(e) if e.is_transient() && attempt < max_attempts);
        if tel.enabled() {
            tel.emit(Event::AttemptEnd {
                cell,
                worker,
                attempt,
                outcome: match &outcome {
                    Ok(_) => "ok",
                    Err(e) => e.category(),
                },
                wall_us: u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX),
                cycles: outcome.as_ref().map_or(0, |r| r.stats.cycles),
                last: !retrying,
            });
        }
        if !retrying {
            return (outcome, attempt);
        }
        let sleep = policy.backoff_base * 2u32.pow(attempt - 1);
        if tel.enabled() {
            tel.emit(Event::Backoff {
                cell,
                worker,
                attempt,
                sleep_us: u64::try_from(sleep.as_micros()).unwrap_or(u64::MAX),
            });
        }
        std::thread::sleep(sleep);
        attempt += 1;
    }
}

/// Final state of one dispatched cell.
struct CellOutcome {
    result: Result<TimedResult, RunError>,
    attempts: u32,
    quarantined_after: Option<usize>,
}

/// The parallel executor behind every public entry point: fans `jobs`
/// across named worker threads, skipping cells where `skip[i]` (already
/// recovered from a checkpoint), quarantining known-bad jobs, and calling
/// `on_done` (under no locks of its own) as each cell completes so the
/// caller can journal it. Slots for skipped cells come back `None`.
fn execute<F>(
    jobs: &[Job],
    max_insts: u64,
    run: RunOptions,
    policy: &RunPolicy,
    skip: &[bool],
    tel: &Telemetry,
    on_done: F,
) -> Vec<Option<CellOutcome>>
where
    F: Fn(usize, &TimedResult) + Sync,
{
    install_cell_panic_hook();
    let n = jobs.len();
    let workers = threads().min(n.max(1));
    let order = schedule_order(jobs, max_insts);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CellOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // Deterministic failures by job, for quarantine: job → (first failing
    // cell, its error).
    let quarantine: Mutex<HashMap<Job, (usize, RunError)>> = Mutex::new(HashMap::new());

    std::thread::scope(|scope| {
        let (next, order, slots, quarantine, on_done) =
            (&next, &order, &slots, &quarantine, &on_done);
        for w in 0..workers {
            std::thread::Builder::new()
                .name(format!("ce-cell-{w}"))
                .spawn_scoped(scope, move || loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= n {
                        break;
                    }
                    let i = order[k];
                    if skip[i] {
                        continue;
                    }
                    let (bench, mut cfg) = jobs[i];
                    cfg.attribution |= run.attribution;
                    let known_bad = if policy.quarantine {
                        quarantine.lock().expect("quarantine poisoned").get(&jobs[i]).cloned()
                    } else {
                        None
                    };
                    let outcome = if let Some((first, error)) = known_bad {
                        if tel.enabled() {
                            tel.emit(Event::Quarantined { cell: i, worker: w, first });
                        }
                        CellOutcome {
                            result: Err(error),
                            attempts: 0,
                            quarantined_after: Some(first),
                        }
                    } else {
                        let (result, attempts) = run_cell_with_retry(
                            i, w, (bench, cfg), max_insts, policy, run.sampled, tel,
                        );
                        if let Err(e) = &result {
                            if policy.quarantine && !e.is_transient() {
                                quarantine
                                    .lock()
                                    .expect("quarantine poisoned")
                                    .entry(jobs[i])
                                    .or_insert((i, e.clone()));
                            }
                        }
                        if let Ok(r) = &result {
                            on_done(i, r);
                        }
                        CellOutcome { result, attempts, quarantined_after: None }
                    };
                    *slots[i].lock().expect("result slot poisoned") = Some(outcome);
                })
                .expect("spawning worker thread");
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("result slot poisoned"))
        .collect()
}

/// Runs every job at the [`crate::max_insts`] cap and returns the
/// statistics in input order.
pub fn run_all(jobs: &[Job]) -> Vec<SimStats> {
    run_timed(jobs, crate::max_insts()).into_iter().map(|r| r.stats).collect()
}

/// Runs every job at an explicit instruction cap, returning per-cell wall
/// times alongside the statistics, in input order.
///
/// # Panics
///
/// Panics on the first failed cell, naming it. Sweeps that probe risky
/// configuration corners should use [`try_run_timed`] (keep the good
/// cells) or [`run_sweep_ft`] (full failure reporting) instead.
pub fn run_timed(jobs: &[Job], max_insts: u64) -> Vec<TimedResult> {
    run_timed_with(jobs, max_insts, RunOptions::default())
}

/// [`run_timed`] with explicit [`RunOptions`] (e.g. stall attribution on
/// every cell).
///
/// # Panics
///
/// Panics on the first failed cell, like [`run_timed`].
pub fn run_timed_with(jobs: &[Job], max_insts: u64, opts: RunOptions) -> Vec<TimedResult> {
    try_run_timed_with(jobs, max_insts, opts)
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|e| panic!("job {i} ({}): {e}", jobs[i].0)))
        .collect()
}

/// Like [`run_timed`], but a failed cell becomes a classified
/// [`RunError`] instead of aborting the whole parallel run — including
/// cells that *panic* (contained by `catch_unwind`, reported as
/// [`RunError::CellPanic`]). Results stay in input order.
pub fn try_run_timed(jobs: &[Job], max_insts: u64) -> Vec<Result<TimedResult, RunError>> {
    try_run_timed_with(jobs, max_insts, RunOptions::default())
}

/// [`try_run_timed`] with explicit [`RunOptions`]. Runs under the default
/// [`RunPolicy`] (no deadline, quarantine on).
pub fn try_run_timed_with(
    jobs: &[Job],
    max_insts: u64,
    opts: RunOptions,
) -> Vec<Result<TimedResult, RunError>> {
    let skip = vec![false; jobs.len()];
    execute(jobs, max_insts, opts, &RunPolicy::default(), &skip, &Telemetry::default(), |_, _| {})
        .into_iter()
        .map(|o| o.expect("unskipped slot filled").result)
        .collect()
}

/// Runs a sweep with aggregate wall-clock accounting.
///
/// This is the legacy all-or-nothing entry point: it runs under the
/// default [`RunPolicy`] with no checkpointing and **panics on the first
/// failed cell**, so on return every slot of `cells` is `Some`. New
/// callers that want failures reported instead should use
/// [`run_sweep_ft`].
///
/// # Panics
///
/// Panics on any failed cell, naming it. Panics if `jobs` is empty (a
/// sweep with no cells has no meaningful summary).
pub fn run_sweep(jobs: &[Job], max_insts: u64, opts: RunOptions) -> SweepSummary {
    let summary = run_sweep_ft(
        jobs,
        max_insts,
        &SweepOptions { run: opts, ..SweepOptions::default() },
    )
    .expect("no checkpoint, no I/O to fail");
    if let Some(failure) = summary.failures.first() {
        panic!("{failure}");
    }
    summary
}

/// Runs a sweep fault-tolerantly: failed cells are classified and
/// reported in [`SweepSummary::failures`] while the rest of the grid
/// completes; with [`SweepOptions::checkpoint`] set, completed cells are
/// journaled as they finish and a resumed invocation re-simulates only
/// the unfinished ones. The journal is deleted after a fully-successful
/// sweep (nothing left to resume); on a sweep with failures it is kept so
/// a fixed rerun with `resume` still skips the good cells.
///
/// # Errors
///
/// Only checkpoint-journal I/O errors. Simulation failures are *results*
/// (in `failures`), never `Err`.
///
/// # Panics
///
/// Panics if `jobs` is empty (a sweep with no cells has no meaningful
/// summary).
pub fn run_sweep_ft(
    jobs: &[Job],
    max_insts: u64,
    opts: &SweepOptions,
) -> std::io::Result<SweepSummary> {
    assert!(!jobs.is_empty(), "run_sweep needs at least one job");
    let start = Instant::now();

    let (journal, mut recovered) = match &opts.checkpoint {
        Some(spec) => {
            let id = sweep_id(jobs, max_insts, opts.run);
            let (journal, recovered) = Journal::open(spec, id, jobs.len())?;
            (Some(Mutex::new(journal)), recovered)
        }
        None => (None, vec![None; jobs.len()]),
    };
    if !opts.prefill.is_empty() {
        assert_eq!(
            opts.prefill.len(),
            jobs.len(),
            "prefill length must match the job count"
        );
        for (slot, pre) in recovered.iter_mut().zip(&opts.prefill) {
            if slot.is_none() {
                slot.clone_from(pre);
            }
        }
    }
    let resumed = recovered.iter().filter(|c| c.is_some()).count();
    let skip: Vec<bool> = recovered.iter().map(Option::is_some).collect();

    let tel = &opts.telemetry;
    if tel.enabled() {
        tel.emit(Event::SweepBegin {
            cells: jobs.len(),
            threads: threads().min(jobs.len()),
            resumed,
            max_insts,
        });
        for (i, cell) in recovered.iter().enumerate() {
            if let Some(r) = cell {
                tel.emit(Event::CellResumed {
                    cell: i,
                    wall_us: u64::try_from(r.wall.as_micros()).unwrap_or(u64::MAX),
                });
            }
        }
    }

    let journal_err: Mutex<Option<std::io::Error>> = Mutex::new(None);
    let outcomes = execute(jobs, max_insts, opts.run, &opts.policy, &skip, tel, |i, result| {
        opts.on_cell.call(i, result);
        if let Some(journal) = &journal {
            let write_start = Instant::now();
            let appended = journal.lock().expect("journal poisoned").record(i, result);
            if tel.enabled() {
                tel.emit(Event::CheckpointWrite {
                    cell: i,
                    write_us: u64::try_from(write_start.elapsed().as_micros())
                        .unwrap_or(u64::MAX),
                });
            }
            if let Err(e) = appended {
                journal_err.lock().expect("journal error slot").get_or_insert(e);
            }
        }
    });
    if let Some(e) = journal_err.into_inner().expect("journal error slot") {
        return Err(e);
    }

    let mut cells = recovered;
    let mut failures = Vec::new();
    for (i, outcome) in outcomes.into_iter().enumerate() {
        let Some(outcome) = outcome else { continue }; // resumed from journal
        match outcome.result {
            Ok(result) => cells[i] = Some(result),
            Err(error) => failures.push(CellFailure {
                index: i,
                bench: jobs[i].0,
                error,
                attempts: outcome.attempts,
                quarantined_after: outcome.quarantined_after,
            }),
        }
    }
    let sweep_wall = start.elapsed();

    if failures.is_empty() {
        if let Some(journal) = journal {
            journal.into_inner().expect("journal poisoned").finish();
        }
    }

    if tel.enabled() {
        tel.emit(Event::SweepEnd {
            ok: cells.iter().flatten().count(),
            failed: failures.len(),
            wall_us: u64::try_from(sweep_wall.as_micros()).unwrap_or(u64::MAX),
        });
    }

    let ok = || cells.iter().flatten();
    let serial_cell_wall = ok().map(|c| c.wall).sum();
    let total_cycles = ok().map(|c| c.stats.cycles).sum();
    let min_cell_wall = ok().map(|c| c.wall).min().unwrap_or(Duration::ZERO);
    let max_cell_wall = ok().map(|c| c.wall).max().unwrap_or(Duration::ZERO);
    Ok(SweepSummary {
        cells,
        failures,
        resumed,
        sweep_wall,
        serial_cell_wall,
        total_cycles,
        min_cell_wall,
        max_cell_wall,
        threads: threads().min(jobs.len()),
        schedule: schedule_order(jobs, max_insts),
    })
}

/// Convenience: the full `machines × benchmarks` grid in row-major
/// (benchmark-major) order, matching the serial loops the experiment
/// binaries used to run.
pub fn grid(machines: &[(&'static str, SimConfig)]) -> Vec<Job> {
    let mut jobs = Vec::with_capacity(machines.len() * 7);
    for bench in Benchmark::all() {
        for (_, cfg) in machines {
            jobs.push((bench, *cfg));
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
    }

    /// The dispatch order is a cost-descending permutation of the input:
    /// every index appears exactly once, costs never increase along it,
    /// and equal-cost cells keep input order (stable sort), so the same
    /// jobs always produce the same recorded schedule.
    #[test]
    fn schedule_order_is_a_stable_longest_first_permutation() {
        use ce_sim::machine;
        let jobs = grid(&machine::figure17_machines());
        let order = schedule_order(&jobs, u64::MAX);
        let mut seen = vec![false; jobs.len()];
        for &i in &order {
            assert!(!seen[i], "index {i} dispatched twice");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "some cell never dispatched");
        for pair in order.windows(2) {
            let (a, b) = (cell_cost(&jobs[pair[0]], u64::MAX), cell_cost(&jobs[pair[1]], u64::MAX));
            assert!(a > b || (a == b && pair[0] < pair[1]), "order not stable-descending");
        }
        // The most expensive kernel on a windowed machine goes first; the
        // cheapest kernel on a FIFO machine goes last.
        assert_eq!(jobs[order[0]].0, Benchmark::M88ksim);
        assert_eq!(jobs[*order.last().unwrap()].0, Benchmark::Compress);
        // An instruction cap collapses the kernel-length differences.
        let capped = schedule_order(&jobs, 1_000);
        for pair in capped.windows(2) {
            assert!(
                cell_cost(&jobs[pair[0]], 1_000) >= cell_cost(&jobs[pair[1]], 1_000),
                "capped order not cost-descending"
            );
        }
    }

    /// A bad grid cell must be reported — classified, by name — while its
    /// neighbours still run: an invalid corner of a sweep used to panic a
    /// worker thread and take the whole parallel run down with it.
    #[test]
    fn bad_cells_fail_individually_not_collectively() {
        use ce_sim::machine;
        let mut bad = machine::baseline_8way();
        bad.bpred.history_bits = 40;
        let jobs = vec![
            (Benchmark::Compress, machine::baseline_8way()),
            (Benchmark::Li, bad),
            (Benchmark::Compress, machine::dependence_8way()),
        ];
        let results = try_run_timed(&jobs, 2_000);
        assert!(results[0].is_ok());
        assert!(results[2].is_ok());
        let err = results[1].as_ref().unwrap_err();
        assert!(matches!(err, RunError::ConfigInvalid(_)), "{err}");
        assert_eq!(err.category(), "config-invalid");
        assert!(!err.is_transient());
        assert!(err.to_string().contains("history"), "{err}");
    }

    /// Attribution requested through [`RunOptions`] fills the breakdown
    /// without perturbing the timing result, and [`run_sweep`]'s
    /// aggregates are consistent with its cells.
    #[test]
    fn attribution_option_fills_breakdown_without_changing_timing() {
        use ce_sim::machine;
        let jobs = vec![
            (Benchmark::Compress, machine::baseline_8way()),
            (Benchmark::Compress, machine::clustered_fifos_8way()),
        ];
        let plain = run_timed(&jobs, 5_000);
        let summary =
            run_sweep(&jobs, 5_000, RunOptions { attribution: true, ..RunOptions::default() });
        assert_eq!(summary.cells.len(), jobs.len());
        assert!(summary.all_ok());
        assert_eq!(summary.resumed, 0);
        let mut total_cycles = 0;
        for (i, (cell, base)) in summary.ok_cells().zip(&plain).enumerate() {
            assert_eq!(cell.stats.fingerprint(), base.stats.fingerprint(), "cell {i}");
            assert!(cell.stats.stall_breakdown.reconciles(
                jobs[i].1.issue_width,
                cell.stats.cycles,
                cell.stats.issued
            ));
            assert!(base.stats.stall_breakdown.is_empty(), "cell {i} charged without opt-in");
            assert!(cell.wall >= summary.min_cell_wall && cell.wall <= summary.max_cell_wall);
            total_cycles += cell.stats.cycles;
        }
        assert_eq!(summary.total_cycles, total_cycles);
        assert_eq!(
            summary.serial_cell_wall,
            summary.ok_cells().map(|c| c.wall).sum::<Duration>()
        );
        assert!(summary.sim_mcycles_per_s() > 0.0);
    }

    /// Sampled sweeps flow through the same worker pool: each cell's
    /// estimate matches a direct `try_run_sampled` call, the measurement
    /// detail rides along in `TimedResult::sampled`, and an invalid
    /// sampling geometry classifies as config-invalid instead of
    /// panicking a worker.
    #[test]
    fn sampled_cells_match_direct_estimates_and_classify_bad_geometry() {
        use ce_sim::machine;
        let jobs = vec![
            (Benchmark::Compress, machine::baseline_8way()),
            (Benchmark::Compress, machine::clustered_fifos_8way()),
        ];
        let sampling = SamplingConfig::default();
        let opts = RunOptions { sampled: Some(sampling), ..RunOptions::default() };
        let results = try_run_timed_with(&jobs, 20_000, opts);
        for (i, r) in results.iter().enumerate() {
            let r = r.as_ref().expect("sampled cell runs");
            let trace = trace_cached(jobs[i].0, 20_000).unwrap();
            let direct = try_run_sampled(jobs[i].1, &trace, sampling).unwrap();
            assert_eq!(r.sampled, Some(direct), "cell {i}");
            assert_eq!(r.stats.cycles, direct.est_cycles, "cell {i}");
            assert_eq!(r.stats.committed, direct.total_insts, "cell {i}");
        }

        let bad = RunOptions {
            sampled: Some(SamplingConfig { window_insts: 0, ..SamplingConfig::default() }),
            ..RunOptions::default()
        };
        let results = try_run_timed_with(&jobs[..1], 2_000, bad);
        let err = results[0].as_ref().unwrap_err();
        assert_eq!(err.category(), "config-invalid");
        assert!(err.to_string().contains("sampling"), "{err}");
    }

    #[test]
    fn results_arrive_in_input_order() {
        use ce_sim::machine;
        let jobs = vec![
            (Benchmark::Compress, machine::baseline_8way()),
            (Benchmark::Li, machine::baseline_8way()),
            (Benchmark::Compress, machine::dependence_8way()),
        ];
        let parallel = run_timed(&jobs, 5_000);
        assert_eq!(parallel.len(), jobs.len());
        for (i, (bench, cfg)) in jobs.iter().enumerate() {
            let trace = trace_cached(*bench, 5_000).unwrap();
            let serial = Simulator::new(*cfg).run(&trace);
            assert_eq!(parallel[i].stats, serial, "job {i} out of order or nondeterministic");
        }
    }

    /// An I/O failure keeps its [`std::io::ErrorKind`], classifies under
    /// the stable `io` category, and is never retried (a full disk fails
    /// every attempt identically).
    #[test]
    fn io_errors_are_structured_and_not_transient() {
        let disk_full =
            std::io::Error::new(std::io::ErrorKind::StorageFull, "no space left on device");
        let err = RunError::io("result store write", &disk_full);
        assert_eq!(err.category(), "io");
        assert!(!err.is_transient());
        assert!(err.message().contains("result store write"), "{err}");
        let RunError::Io { kind, .. } = &err else { panic!("wrong variant: {err}") };
        assert_eq!(*kind, std::io::ErrorKind::StorageFull);
        assert!(err.to_string().starts_with("io: "), "{err}");
    }

    /// Prefilled cells behave like checkpoint-recovered ones: they are
    /// never re-simulated, they count as resumed, and the `on_cell` hook
    /// fires only for the cells that actually ran.
    #[test]
    fn prefill_skips_cells_and_on_cell_sees_only_fresh_ones() {
        use ce_sim::machine;
        let jobs = vec![
            (Benchmark::Compress, machine::baseline_8way()),
            (Benchmark::Li, machine::baseline_8way()),
        ];
        let full = run_sweep(&jobs, 2_000, RunOptions::default());
        let canned = full.cells[0].clone().unwrap();

        let fresh = std::sync::Arc::new(Mutex::new(Vec::new()));
        let hook_log = std::sync::Arc::clone(&fresh);
        let summary = run_sweep_ft(
            &jobs,
            2_000,
            &SweepOptions {
                prefill: vec![Some(canned.clone()), None],
                on_cell: CellHook::new(move |i, _| {
                    hook_log.lock().unwrap().push(i);
                }),
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert!(summary.all_ok());
        assert_eq!(summary.resumed, 1);
        assert_eq!(summary.cells[0].as_ref().unwrap().wall, canned.wall);
        assert_eq!(
            summary.cells[1].as_ref().unwrap().stats.fingerprint(),
            full.cells[1].as_ref().unwrap().stats.fingerprint()
        );
        assert_eq!(*fresh.lock().unwrap(), vec![1], "hook must see only the fresh cell");
    }

    #[test]
    fn panic_payload_classification() {
        let checker = classify_panic(Box::new(
            "invariant checker: 1 violation(s) by cycle 3:\n  x".to_string(),
        ));
        assert_eq!(checker.category(), "checker-violation");
        let deadlock = classify_panic(Box::new("deadlock at cycle 99".to_string()));
        assert_eq!(deadlock.category(), "timeout");
        assert!(deadlock.is_transient());
        let bug = classify_panic(Box::new("index out of bounds"));
        assert_eq!(bug.category(), "cell-panic");
        let opaque = classify_panic(Box::new(42_u32));
        assert!(opaque.message().contains("non-string"), "{opaque}");
    }
}
