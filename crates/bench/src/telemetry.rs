//! Engine telemetry: sweep → job → cell span tracing for the experiment
//! runner, mirroring the simulator's `ProbeSink` discipline — **zero cost
//! when disabled**, and never able to change results when enabled.
//!
//! The simulator got deep observability in PR 3 (probe events, stall
//! attribution, pipeview); this module gives the *experiment engine* the
//! same treatment. A [`Telemetry`] handle is threaded through
//! [`run_sweep_ft`](crate::runner::run_sweep_ft) and emits one
//! [`Event`] per state transition of every cell: dispatch (queue wait is
//! the gap from sweep begin to first attempt), attempt start/end, retry
//! backoff, quarantine, checkpoint-journal append, and sweep begin/end.
//!
//! Three consumers share the one event stream, each optional:
//!
//! * **JSONL journal** — one event per line, appended and flushed as it
//!   happens (the same torn-tail discipline as the checkpoint journal:
//!   a `kill -9` loses at most the line in flight, and
//!   [`HealthReport::from_journal`] tolerates exactly that). The
//!   `sweephealth` binary aggregates these into a health report.
//! * **Live progress line** — a single self-overwriting stderr line with
//!   percent done and an ETA weighted by
//!   [`schedule_order`](crate::runner::schedule_order)'s per-cell cost
//!   estimates, so seven cheap cells don't read as 7× the progress of one
//!   gcc central-window cell.
//! * **Chrome `trace_event` export** — a Perfetto-loadable JSON timeline
//!   with one lane per `ce-cell-*` worker, written atomically at sweep
//!   end. Stragglers, retry storms, and the longest-first dispatch order
//!   become visually auditable.
//!
//! The disabled path is a single `Option` check per event
//! ([`Telemetry::default`] carries no allocation), and no consumer ever
//! touches result data: CSVs and fingerprints are byte-identical with
//! telemetry on or off (`tests/telemetry.rs` pins this).

use std::collections::{BTreeMap, HashMap};
use std::fs::File;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ce_workloads::Benchmark;

use crate::checkpoint::write_atomic;
use crate::json::Json;

/// The telemetry journal's header tag (first line of the JSONL file).
pub const TELEMETRY_VERSION: u64 = 1;

/// One structured engine event. Timestamps are added by the sink
/// (microseconds since the [`Telemetry`] handle was created); every
/// event is self-contained so journal lines never need joining to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// The sweep is about to dispatch work (after checkpoint recovery).
    SweepBegin {
        /// Total cells in the sweep.
        cells: usize,
        /// Worker threads about to run.
        threads: usize,
        /// Cells recovered from the checkpoint journal.
        resumed: usize,
        /// Per-benchmark instruction cap.
        max_insts: u64,
    },
    /// A cell was recovered from the checkpoint journal instead of run;
    /// `wall_us` is its journaled simulation wall time.
    CellResumed {
        /// Input-order cell index.
        cell: usize,
        /// Journaled wall time of the original run, µs.
        wall_us: u64,
    },
    /// A worker started one attempt of a cell. The gap between
    /// `SweepBegin` and a cell's first `AttemptStart` is its queue wait.
    AttemptStart {
        /// Input-order cell index.
        cell: usize,
        /// The benchmark half of the job.
        bench: Benchmark,
        /// Worker index (thread `ce-cell-{worker}`).
        worker: usize,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// The attempt finished. `outcome` is `"ok"` or the
    /// [`RunError`](crate::runner::RunError) category; `last` is false
    /// only when a retry of the same cell will follow.
    AttemptEnd {
        /// Input-order cell index.
        cell: usize,
        /// Worker index.
        worker: usize,
        /// 1-based attempt number.
        attempt: u32,
        /// `"ok"` or a `RunError` category name.
        outcome: &'static str,
        /// Wall time of this attempt, µs.
        wall_us: u64,
        /// Simulated cycles (0 on failure).
        cycles: u64,
        /// Whether this settles the cell (no retry follows).
        last: bool,
    },
    /// A transient failure is being retried after this sleep.
    Backoff {
        /// Input-order cell index.
        cell: usize,
        /// Worker index.
        worker: usize,
        /// The attempt that just failed.
        attempt: u32,
        /// Exponential-backoff sleep before the next attempt, µs.
        sleep_us: u64,
    },
    /// The cell failed fast because an identical job already failed
    /// deterministically at cell `first`.
    Quarantined {
        /// Input-order cell index.
        cell: usize,
        /// Worker index.
        worker: usize,
        /// The cell whose failure poisoned this job.
        first: usize,
    },
    /// One checkpoint-journal append (the fsync-ish flush included).
    CheckpointWrite {
        /// Input-order cell index journaled.
        cell: usize,
        /// Wall time of the append + flush, µs.
        write_us: u64,
    },
    /// The sweep finished (success or not); the sink flushes, clears the
    /// progress line, and writes the Chrome trace on this event.
    SweepEnd {
        /// Cells with results (resumed included).
        ok: usize,
        /// Cells that failed.
        failed: usize,
        /// Wall time of the whole sweep, µs.
        wall_us: u64,
    },
    /// A cell was served from the content-addressed result store instead
    /// of being simulated (the experiment service emits these while
    /// planning a job).
    CacheHit {
        /// Input-order cell index.
        cell: usize,
    },
    /// A cell missed the result store and will be simulated. A stale
    /// entry (written by a different code version) counts as a miss — it
    /// is never silently served.
    CacheMiss {
        /// Input-order cell index.
        cell: usize,
    },
    /// The shared trace LRU evicted entries; `count` is the eviction
    /// delta since the previous report (the service emits one per job).
    TraceEvicted {
        /// Evictions since the last `TraceEvicted` event.
        count: u64,
    },
}

impl Event {
    /// Stable machine-readable event name (the journal's `ev` field).
    pub fn name(&self) -> &'static str {
        match self {
            Event::SweepBegin { .. } => "sweep-begin",
            Event::CellResumed { .. } => "cell-resumed",
            Event::AttemptStart { .. } => "attempt-start",
            Event::AttemptEnd { .. } => "attempt-end",
            Event::Backoff { .. } => "backoff",
            Event::Quarantined { .. } => "quarantined",
            Event::CheckpointWrite { .. } => "checkpoint-write",
            Event::SweepEnd { .. } => "sweep-end",
            Event::CacheHit { .. } => "cache-hit",
            Event::CacheMiss { .. } => "cache-miss",
            Event::TraceEvicted { .. } => "trace-evicted",
        }
    }
}

/// Anything that consumes engine events. [`Telemetry`] is the canonical
/// implementation (journal + progress + Chrome trace behind one handle);
/// the trait exists so tests can capture events without touching the
/// filesystem, mirroring the simulator's `ProbeSink`.
pub trait TelemetrySink {
    /// Consume one event. Must never panic and never influence results.
    fn emit(&self, ev: Event);
    /// Whether events are observed at all (lets hot paths skip argument
    /// construction; the default handle answers in one branch).
    fn enabled(&self) -> bool;
}

/// How to build a [`Telemetry`] handle. All consumers default off; a
/// config with nothing enabled produces the zero-cost disabled handle.
#[derive(Debug, Clone, Default)]
pub struct TelemetryConfig {
    /// Sweep name for the journal header and progress line.
    pub name: String,
    /// Write the JSONL event journal here.
    pub journal: Option<PathBuf>,
    /// Write a Chrome `trace_event` JSON here at sweep end.
    pub chrome_out: Option<PathBuf>,
    /// Render the live stderr progress line.
    pub progress: bool,
}

/// The telemetry handle threaded through
/// [`SweepOptions`](crate::runner::SweepOptions). Cheap to clone
/// (`Arc`), `Default` is the disabled handle: one pointer-sized `None`,
/// one branch per would-be event, no allocation.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Deliberately opaque: SweepOptions derives Debug, and telemetry
        // state must never leak into anything a caller might hash.
        f.write_str(if self.inner.is_some() { "Telemetry(on)" } else { "Telemetry(off)" })
    }
}

struct Inner {
    name: String,
    epoch: Instant,
    journal: Option<Mutex<File>>,
    chrome_out: Option<PathBuf>,
    recorder: Option<Mutex<Vec<(u64, Event)>>>,
    progress: Option<Mutex<Progress>>,
    /// Per-cell cost estimates (same scale as
    /// [`schedule_order`](crate::runner::schedule_order)) for the ETA.
    weights: Vec<u64>,
}

impl Telemetry {
    /// The disabled handle (same as `Telemetry::default()`).
    pub fn disabled() -> Telemetry {
        Telemetry::default()
    }

    /// Builds a handle per `config`. `weights` are the per-cell cost
    /// estimates (from [`crate::runner::cell_weights`]) the progress ETA
    /// uses; `max_insts` is recorded in the journal header. Returns the
    /// disabled handle when no consumer is requested.
    ///
    /// # Errors
    ///
    /// I/O errors creating the journal file (the one consumer that opens
    /// a file eagerly — failing *later* would silently drop telemetry the
    /// user asked for).
    pub fn create(
        config: &TelemetryConfig,
        weights: Vec<u64>,
        max_insts: u64,
    ) -> std::io::Result<Telemetry> {
        if config.journal.is_none() && config.chrome_out.is_none() && !config.progress {
            return Ok(Telemetry::default());
        }
        let journal = match &config.journal {
            Some(path) => {
                if let Some(dir) = path.parent() {
                    if !dir.as_os_str().is_empty() {
                        std::fs::create_dir_all(dir)?;
                    }
                }
                // Through the I/O fault seam like every durability path:
                // an injected fault here fails telemetry *creation*
                // loudly (the caller asked for a journal it cannot have)
                // while per-event append faults later are swallowed.
                let mut w = crate::iofault::create(path)?;
                let header = format!(
                    "{{\"ce_telemetry\": {TELEMETRY_VERSION}, \"name\": \"{}\", \
                     \"cells\": {}, \"max_insts\": {max_insts}}}\n",
                    config.name,
                    weights.len(),
                );
                crate::iofault::write_all(&mut w, header.as_bytes())?;
                Some(Mutex::new(w))
            }
            None => None,
        };
        let total_weight = weights.iter().sum::<u64>().max(1);
        Ok(Telemetry {
            inner: Some(Arc::new(Inner {
                name: config.name.clone(),
                epoch: Instant::now(),
                journal,
                chrome_out: config.chrome_out.clone(),
                recorder: config.chrome_out.is_some().then(|| Mutex::new(Vec::new())),
                progress: config.progress.then(|| {
                    Mutex::new(Progress {
                        total_cells: weights.len(),
                        done_cells: 0,
                        failed_cells: 0,
                        total_weight,
                        done_weight: 0,
                        last_render_us: None,
                    })
                }),
                weights,
            })),
        })
    }
}

impl TelemetrySink for Telemetry {
    fn emit(&self, ev: Event) {
        if let Some(inner) = &self.inner {
            inner.observe(ev);
        }
    }

    #[inline]
    fn enabled(&self) -> bool {
        self.inner.is_some()
    }
}

impl Inner {
    fn observe(&self, ev: Event) {
        // Saturating far beyond any real sweep; stays u64 for the journal.
        let t_us = u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        if let Some(journal) = &self.journal {
            // Telemetry I/O failures must never fail a sweep: swallow
            // them (the journal simply ends early or loses one line,
            // which every reader already tolerates). One complete line
            // per write through the fault seam, so even an injected torn
            // write leaves the recoverable torn-line shape.
            if let Ok(mut w) = journal.lock() {
                let line = format!("{}\n", event_json(t_us, &ev));
                let _ = crate::iofault::write_all(&mut w, line.as_bytes());
            }
        }
        if let Some(recorder) = &self.recorder {
            if let Ok(mut events) = recorder.lock() {
                events.push((t_us, ev));
            }
        }
        if let Some(progress) = &self.progress {
            if let Ok(mut p) = progress.lock() {
                p.observe(t_us, &ev, &self.name, &self.weights);
            }
        }
        if matches!(ev, Event::SweepEnd { .. }) {
            self.export_chrome_trace();
        }
    }

    /// Writes the Chrome trace (if requested) from the recorded events.
    /// Failures warn on stderr instead of failing the sweep.
    fn export_chrome_trace(&self) {
        let (Some(path), Some(recorder)) = (&self.chrome_out, &self.recorder) else {
            return;
        };
        let Ok(events) = recorder.lock() else { return };
        let json = chrome_trace_json(&self.name, &events);
        if let Err(e) = write_atomic(path, &json) {
            eprintln!("{}: warning: writing Chrome trace {}: {e}", self.name, path.display());
        }
    }
}

/// Serializes one event as a journal line (no trailing newline).
fn event_json(t_us: u64, ev: &Event) -> String {
    let body = match *ev {
        Event::SweepBegin { cells, threads, resumed, max_insts } => format!(
            "\"cells\": {cells}, \"threads\": {threads}, \"resumed\": {resumed}, \
             \"max_insts\": {max_insts}"
        ),
        Event::CellResumed { cell, wall_us } => {
            format!("\"cell\": {cell}, \"wall_us\": {wall_us}")
        }
        Event::AttemptStart { cell, bench, worker, attempt } => format!(
            "\"cell\": {cell}, \"bench\": \"{}\", \"worker\": {worker}, \"attempt\": {attempt}",
            bench.name()
        ),
        Event::AttemptEnd { cell, worker, attempt, outcome, wall_us, cycles, last } => format!(
            "\"cell\": {cell}, \"worker\": {worker}, \"attempt\": {attempt}, \
             \"outcome\": \"{outcome}\", \"wall_us\": {wall_us}, \"cycles\": {cycles}, \
             \"last\": {last}"
        ),
        Event::Backoff { cell, worker, attempt, sleep_us } => format!(
            "\"cell\": {cell}, \"worker\": {worker}, \"attempt\": {attempt}, \
             \"sleep_us\": {sleep_us}"
        ),
        Event::Quarantined { cell, worker, first } => {
            format!("\"cell\": {cell}, \"worker\": {worker}, \"first\": {first}")
        }
        Event::CheckpointWrite { cell, write_us } => {
            format!("\"cell\": {cell}, \"write_us\": {write_us}")
        }
        Event::SweepEnd { ok, failed, wall_us } => {
            format!("\"ok\": {ok}, \"failed\": {failed}, \"wall_us\": {wall_us}")
        }
        Event::CacheHit { cell } | Event::CacheMiss { cell } => format!("\"cell\": {cell}"),
        Event::TraceEvicted { count } => format!("\"count\": {count}"),
    };
    format!("{{\"t_us\": {t_us}, \"ev\": \"{}\", {body}}}", ev.name())
}

/// Live progress state. Rendering is throttled to ~10 Hz so tight sweeps
/// of tiny cells don't spend their time repainting a terminal line.
struct Progress {
    total_cells: usize,
    done_cells: usize,
    failed_cells: usize,
    total_weight: u64,
    done_weight: u64,
    last_render_us: Option<u64>,
}

impl Progress {
    fn observe(&mut self, t_us: u64, ev: &Event, name: &str, weights: &[u64]) {
        let settle = |p: &mut Progress, cell: usize, failed: bool| {
            p.done_cells += 1;
            p.failed_cells += usize::from(failed);
            p.done_weight += weights.get(cell).copied().unwrap_or(1);
        };
        match *ev {
            Event::SweepBegin { .. } => self.render(t_us, name, true),
            Event::CellResumed { cell, .. } => {
                settle(self, cell, false);
                self.render(t_us, name, false);
            }
            Event::AttemptEnd { cell, outcome, last: true, .. } => {
                settle(self, cell, outcome != "ok");
                self.render(t_us, name, false);
            }
            Event::Quarantined { cell, .. } => {
                settle(self, cell, true);
                self.render(t_us, name, false);
            }
            Event::SweepEnd { .. } => {
                // Clear the line so the binary's ordinary stderr epilogue
                // ("wrote results/…") starts at column 0.
                let mut err = std::io::stderr().lock();
                let _ = write!(err, "\r\x1b[2K");
                let _ = err.flush();
            }
            _ => {}
        }
    }

    fn render(&mut self, t_us: u64, name: &str, force: bool) {
        let due = force
            || self.done_cells == self.total_cells
            || self.last_render_us.is_none_or(|last| t_us.saturating_sub(last) >= 100_000);
        if !due {
            return;
        }
        self.last_render_us = Some(t_us);
        let pct = self.done_weight as f64 / self.total_weight as f64 * 100.0;
        let elapsed_s = t_us as f64 / 1e6;
        let eta = if self.done_weight == 0 || self.done_cells == self.total_cells {
            "--".to_owned()
        } else {
            let remaining = (self.total_weight - self.done_weight) as f64;
            format!("{:.0}s", elapsed_s * remaining / self.done_weight as f64)
        };
        let failures = if self.failed_cells > 0 {
            format!("  {} failed", self.failed_cells)
        } else {
            String::new()
        };
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r\x1b[2K{name}: {}/{} cells  {pct:5.1}%  elapsed {elapsed_s:.1}s  \
             eta {eta}{failures}",
            self.done_cells, self.total_cells
        );
        let _ = err.flush();
    }
}

/// Synthetic Chrome-trace lane ids for non-worker activity.
const CHECKPOINT_TID: u64 = 1_000;
const RESUMED_TID: u64 = 1_001;
const CACHE_TID: u64 = 1_002;

/// Renders recorded events as Chrome `trace_event` JSON (the
/// `{"traceEvents": [...]}` object format Perfetto and `chrome://tracing`
/// load directly). One lane per worker thread, named `ce-cell-N` to match
/// the real thread names; attempts are complete (`X`) spans, retries and
/// quarantines instant (`i`) markers, checkpoint appends and resumed
/// cells their own lanes.
fn chrome_trace_json(name: &str, events: &[(u64, Event)]) -> String {
    let mut out: Vec<String> = Vec::new();
    out.push(format!(
        "{{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \
         \"args\": {{\"name\": \"ce-sweep {name}\"}}}}"
    ));
    let mut workers: Vec<usize> = events
        .iter()
        .filter_map(|(_, ev)| match ev {
            Event::AttemptStart { worker, .. }
            | Event::AttemptEnd { worker, .. }
            | Event::Backoff { worker, .. }
            | Event::Quarantined { worker, .. } => Some(*worker),
            _ => None,
        })
        .collect();
    workers.sort_unstable();
    workers.dedup();
    for &w in &workers {
        out.push(format!(
            "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {w}, \"name\": \"thread_name\", \
             \"args\": {{\"name\": \"ce-cell-{w}\"}}}}"
        ));
    }
    for (tid, label) in [
        (CHECKPOINT_TID, "checkpoint"),
        (RESUMED_TID, "resumed"),
        (CACHE_TID, "result-cache"),
    ] {
        if events.iter().any(|(_, ev)| match ev {
            Event::CheckpointWrite { .. } => tid == CHECKPOINT_TID,
            Event::CellResumed { .. } => tid == RESUMED_TID,
            Event::CacheHit { .. } | Event::CacheMiss { .. } | Event::TraceEvicted { .. } => {
                tid == CACHE_TID
            }
            _ => false,
        }) {
            out.push(format!(
                "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": \"{label}\"}}}}"
            ));
        }
    }

    // Workers run attempts serially, so pairing is one open span per lane.
    let mut open: HashMap<usize, (u64, usize, Benchmark, u32)> = HashMap::new();
    for &(t_us, ev) in events {
        match ev {
            Event::SweepBegin { cells, threads, resumed, .. } => out.push(format!(
                "{{\"ph\": \"i\", \"pid\": 1, \"tid\": 0, \"ts\": {t_us}, \"s\": \"p\", \
                 \"name\": \"sweep-begin\", \"args\": {{\"cells\": {cells}, \
                 \"threads\": {threads}, \"resumed\": {resumed}}}}}"
            )),
            Event::SweepEnd { ok, failed, .. } => out.push(format!(
                "{{\"ph\": \"i\", \"pid\": 1, \"tid\": 0, \"ts\": {t_us}, \"s\": \"p\", \
                 \"name\": \"sweep-end\", \"args\": {{\"ok\": {ok}, \"failed\": {failed}}}}}"
            )),
            Event::AttemptStart { cell, bench, worker, attempt } => {
                open.insert(worker, (t_us, cell, bench, attempt));
            }
            Event::AttemptEnd { cell, worker, attempt, outcome, cycles, .. } => {
                let (start, _, bench, _) = open
                    .remove(&worker)
                    .unwrap_or((t_us, cell, Benchmark::Compress, attempt));
                out.push(format!(
                    "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {worker}, \"ts\": {start}, \
                     \"dur\": {}, \"name\": \"{} cell {cell}\", \"cat\": \"cell\", \
                     \"args\": {{\"attempt\": {attempt}, \"outcome\": \"{outcome}\", \
                     \"cycles\": {cycles}}}}}",
                    t_us.saturating_sub(start),
                    bench.name(),
                ));
            }
            Event::Backoff { cell, worker, attempt, sleep_us } => out.push(format!(
                "{{\"ph\": \"i\", \"pid\": 1, \"tid\": {worker}, \"ts\": {t_us}, \
                 \"s\": \"t\", \"name\": \"backoff cell {cell}\", \
                 \"args\": {{\"attempt\": {attempt}, \"sleep_us\": {sleep_us}}}}}"
            )),
            Event::Quarantined { cell, worker, first } => out.push(format!(
                "{{\"ph\": \"i\", \"pid\": 1, \"tid\": {worker}, \"ts\": {t_us}, \
                 \"s\": \"t\", \"name\": \"quarantined cell {cell}\", \
                 \"args\": {{\"first\": {first}}}}}"
            )),
            Event::CheckpointWrite { cell, write_us } => out.push(format!(
                "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {CHECKPOINT_TID}, \
                 \"ts\": {}, \"dur\": {write_us}, \"name\": \"journal cell {cell}\", \
                 \"cat\": \"checkpoint\", \"args\": {{}}}}",
                t_us.saturating_sub(write_us)
            )),
            Event::CellResumed { cell, wall_us } => out.push(format!(
                "{{\"ph\": \"i\", \"pid\": 1, \"tid\": {RESUMED_TID}, \"ts\": {t_us}, \
                 \"s\": \"t\", \"name\": \"resumed cell {cell}\", \
                 \"args\": {{\"wall_us\": {wall_us}}}}}"
            )),
            Event::CacheHit { cell } => out.push(format!(
                "{{\"ph\": \"i\", \"pid\": 1, \"tid\": {CACHE_TID}, \"ts\": {t_us}, \
                 \"s\": \"t\", \"name\": \"cache-hit cell {cell}\", \"args\": {{}}}}"
            )),
            Event::CacheMiss { cell } => out.push(format!(
                "{{\"ph\": \"i\", \"pid\": 1, \"tid\": {CACHE_TID}, \"ts\": {t_us}, \
                 \"s\": \"t\", \"name\": \"cache-miss cell {cell}\", \"args\": {{}}}}"
            )),
            Event::TraceEvicted { count } => out.push(format!(
                "{{\"ph\": \"i\", \"pid\": 1, \"tid\": {CACHE_TID}, \"ts\": {t_us}, \
                 \"s\": \"t\", \"name\": \"trace-evicted\", \
                 \"args\": {{\"count\": {count}}}}}"
            )),
        }
    }
    format!(
        "{{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n{}\n]}}\n",
        out.join(",\n")
    )
}

/// Aggregate health view of one telemetry journal — what `sweephealth`
/// prints. Built purely from the JSONL text, so it works on journals from
/// live, killed, and resumed sweeps alike.
#[derive(Debug, Clone, Default)]
pub struct HealthReport {
    /// Sweep name from the journal header.
    pub name: String,
    /// Total cells the sweep was dispatching.
    pub cells: usize,
    /// Instruction cap from the header.
    pub max_insts: u64,
    /// Worker threads (0 until a `sweep-begin` is seen).
    pub threads: usize,
    /// Cells with results: settled `ok` attempts plus resumed cells.
    pub completed: usize,
    /// Cells that settled in failure (quarantines included).
    pub failed: usize,
    /// Cells recovered from the checkpoint journal.
    pub resumed: usize,
    /// Retry sleeps taken (one per `backoff` event).
    pub retries: usize,
    /// Cells failed fast by quarantine.
    pub quarantined: usize,
    /// Failed attempts by `RunError` category.
    pub errors_by_category: BTreeMap<String, usize>,
    /// `(cell, wall_us)` of every completed cell, journal order. Resumed
    /// cells carry their journaled wall, so a killed-and-resumed sweep
    /// reports the same per-cell costs as an uninterrupted one.
    pub cell_walls_us: Vec<(usize, u64)>,
    /// Attempt wall time by worker (busy time, µs).
    pub worker_busy_us: BTreeMap<usize, u64>,
    /// Checkpoint-journal appends observed.
    pub ckpt_writes: usize,
    /// Total checkpoint append wall, µs.
    pub ckpt_write_us: u64,
    /// Sweep wall from `sweep-end` (else the last event timestamp), µs.
    pub sweep_wall_us: u64,
    /// Whether a `sweep-end` event was seen (false = killed mid-sweep).
    pub ended: bool,
    /// Cells served from the content-addressed result store.
    pub cache_hits: usize,
    /// Cells that missed the result store (stale entries included).
    pub cache_misses: usize,
    /// Trace-LRU evictions reported (`trace-evicted` counts summed).
    pub trace_evictions: u64,
}

impl HealthReport {
    /// Parses a telemetry journal. A torn final line (the `kill -9`
    /// signature) is tolerated and dropped, exactly like the checkpoint
    /// journal loader; corruption anywhere else is an error — a health
    /// report from bytes we cannot trust would mislead.
    ///
    /// # Errors
    ///
    /// A message naming the malformed line.
    pub fn from_journal(text: &str) -> Result<HealthReport, String> {
        let mut lines = text.lines().enumerate().peekable();
        let (_, header) = lines.next().ok_or("empty journal")?;
        let header = Json::parse(header).map_err(|e| format!("header: {e}"))?;
        if header.at("ce_telemetry").and_then(Json::as_u64) != Some(TELEMETRY_VERSION) {
            return Err("not a ce_telemetry v1 journal".into());
        }
        let mut report = HealthReport {
            name: header.at("name").and_then(Json::as_str).unwrap_or("?").to_owned(),
            cells: header.at("cells").and_then(Json::as_u64).unwrap_or(0) as usize,
            max_insts: header.at("max_insts").and_then(Json::as_u64).unwrap_or(0),
            ..HealthReport::default()
        };
        let mut last_t_us = 0;
        while let Some((lineno, line)) = lines.next() {
            if line.trim().is_empty() {
                continue;
            }
            match parse_event_line(line) {
                Some((t_us, doc)) => {
                    last_t_us = t_us;
                    report.absorb(t_us, &doc)?;
                }
                None if lines.peek().is_none() => break, // torn final line
                None => return Err(format!("line {}: malformed event", lineno + 1)),
            }
        }
        if !report.ended {
            report.sweep_wall_us = last_t_us;
        }
        Ok(report)
    }

    /// Folds one parsed event line into the running aggregates.
    fn absorb(&mut self, t_us: u64, doc: &Json) -> Result<(), String> {
        let ev = doc.at("ev").and_then(Json::as_str).ok_or("event without `ev`")?;
        let num = |key: &str| doc.at(key).and_then(Json::as_u64);
        match ev {
            "sweep-begin" => {
                self.threads = num("threads").unwrap_or(0) as usize;
            }
            "cell-resumed" => {
                let cell = num("cell").unwrap_or(0) as usize;
                self.resumed += 1;
                self.completed += 1;
                self.cell_walls_us.push((cell, num("wall_us").unwrap_or(0)));
            }
            "attempt-start" => {}
            "attempt-end" => {
                let worker = num("worker").unwrap_or(0) as usize;
                let wall_us = num("wall_us").unwrap_or(0);
                *self.worker_busy_us.entry(worker).or_insert(0) += wall_us;
                let outcome =
                    doc.at("outcome").and_then(Json::as_str).unwrap_or("?").to_owned();
                let last = doc.at("last").and_then(Json::as_bool).unwrap_or(true);
                if outcome == "ok" {
                    self.completed += 1;
                    self.cell_walls_us.push((num("cell").unwrap_or(0) as usize, wall_us));
                } else {
                    *self.errors_by_category.entry(outcome).or_insert(0) += 1;
                    if last {
                        self.failed += 1;
                    }
                }
            }
            "backoff" => self.retries += 1,
            "quarantined" => {
                self.quarantined += 1;
                self.failed += 1;
            }
            "checkpoint-write" => {
                self.ckpt_writes += 1;
                self.ckpt_write_us += num("write_us").unwrap_or(0);
            }
            "sweep-end" => {
                self.ended = true;
                self.sweep_wall_us = num("wall_us").unwrap_or(t_us);
            }
            "cache-hit" => self.cache_hits += 1,
            "cache-miss" => self.cache_misses += 1,
            "trace-evicted" => self.trace_evictions += num("count").unwrap_or(0),
            other => return Err(format!("unknown event `{other}`")),
        }
        Ok(())
    }

    /// Completed cells per wall-clock second.
    pub fn cells_per_sec(&self) -> f64 {
        let secs = self.sweep_wall_us as f64 / 1e6;
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }

    /// Summed attempt wall across workers, µs (the sweep's serial cost).
    pub fn busy_us(&self) -> u64 {
        self.worker_busy_us.values().sum()
    }

    /// Worker utilization: busy time over `threads × sweep wall`.
    pub fn utilization(&self) -> f64 {
        let capacity = self.threads as f64 * self.sweep_wall_us as f64;
        if capacity > 0.0 {
            self.busy_us() as f64 / capacity
        } else {
            0.0
        }
    }

    /// The ideal (perfectly packed) wall for this work: busy time divided
    /// across the workers, µs.
    pub fn ideal_wall_us(&self) -> u64 {
        if self.threads == 0 {
            return self.busy_us();
        }
        self.busy_us() / self.threads as u64
    }

    /// The `n` slowest completed cells, cost-descending.
    pub fn stragglers(&self, n: usize) -> Vec<(usize, u64)> {
        let mut cells = self.cell_walls_us.clone();
        cells.sort_by_key(|&(cell, wall)| (std::cmp::Reverse(wall), cell));
        cells.truncate(n);
        cells
    }

    /// Whether the journal describes a finished, fully-successful sweep.
    pub fn healthy(&self) -> bool {
        self.ended && self.failed == 0 && self.completed == self.cells
    }

    /// Renders the human-readable report `sweephealth` prints.
    pub fn render(&self, top: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sweep {}: {}/{} cells completed, {} failed, {} resumed \
             ({} retries, {} quarantined){}",
            self.name,
            self.completed,
            self.cells,
            self.failed,
            self.resumed,
            self.retries,
            self.quarantined,
            if self.ended { "" } else { "  [no sweep-end: killed mid-run]" },
        );
        let _ = writeln!(
            out,
            "wall {:.3}s, ideal {:.3}s ({} workers, {:.0}% utilization), \
             {:.1} cells/s",
            self.sweep_wall_us as f64 / 1e6,
            self.ideal_wall_us() as f64 / 1e6,
            self.threads,
            self.utilization() * 100.0,
            self.cells_per_sec(),
        );
        if self.ckpt_writes > 0 {
            let _ = writeln!(
                out,
                "checkpoint: {} appends, {:.1} ms total ({:.0} µs mean)",
                self.ckpt_writes,
                self.ckpt_write_us as f64 / 1e3,
                self.ckpt_write_us as f64 / self.ckpt_writes as f64,
            );
        }
        if self.cache_hits + self.cache_misses > 0 {
            let total = self.cache_hits + self.cache_misses;
            let _ = writeln!(
                out,
                "result cache: {} hits, {} misses ({:.0}% hit rate)",
                self.cache_hits,
                self.cache_misses,
                self.cache_hits as f64 / total as f64 * 100.0,
            );
        }
        if self.trace_evictions > 0 {
            let _ = writeln!(out, "trace cache: {} eviction(s)", self.trace_evictions);
        }
        for (category, count) in &self.errors_by_category {
            let _ = writeln!(out, "errors[{category}]: {count} attempt(s)");
        }
        let stragglers = self.stragglers(top);
        if !stragglers.is_empty() {
            let _ = writeln!(out, "straggler top-{}:", stragglers.len());
            for (cell, wall) in stragglers {
                let _ = writeln!(out, "  cell {cell:>4}  {:.3}s", wall as f64 / 1e6);
            }
        }
        out
    }
}

/// Parses one journal event line into `(t_us, doc)`; `None` when torn or
/// malformed.
fn parse_event_line(line: &str) -> Option<(u64, Json)> {
    let doc = Json::parse(line).ok()?;
    let t_us = doc.at("t_us")?.as_u64()?;
    doc.at("ev")?.as_str()?;
    Some((t_us, doc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal_of(events: &[(u64, Event)]) -> String {
        let mut text = String::from(
            "{\"ce_telemetry\": 1, \"name\": \"t\", \"cells\": 3, \"max_insts\": 500}\n",
        );
        for (t, ev) in events {
            text.push_str(&event_json(*t, ev));
            text.push('\n');
        }
        text
    }

    fn sample_events() -> Vec<(u64, Event)> {
        vec![
            (0, Event::SweepBegin { cells: 3, threads: 2, resumed: 1, max_insts: 500 }),
            (1, Event::CellResumed { cell: 0, wall_us: 900 }),
            (
                2,
                Event::AttemptStart {
                    cell: 1,
                    bench: Benchmark::Compress,
                    worker: 0,
                    attempt: 1,
                },
            ),
            (
                500,
                Event::AttemptEnd {
                    cell: 1,
                    worker: 0,
                    attempt: 1,
                    outcome: "timeout",
                    wall_us: 498,
                    cycles: 0,
                    last: false,
                },
            ),
            (501, Event::Backoff { cell: 1, worker: 0, attempt: 1, sleep_us: 50 }),
            (
                600,
                Event::AttemptStart {
                    cell: 1,
                    bench: Benchmark::Compress,
                    worker: 0,
                    attempt: 2,
                },
            ),
            (
                900,
                Event::AttemptEnd {
                    cell: 1,
                    worker: 0,
                    attempt: 2,
                    outcome: "ok",
                    wall_us: 300,
                    cycles: 1234,
                    last: true,
                },
            ),
            (905, Event::CheckpointWrite { cell: 1, write_us: 4 }),
            (950, Event::Quarantined { cell: 2, worker: 1, first: 1 }),
            (1000, Event::SweepEnd { ok: 2, failed: 1, wall_us: 1000 }),
        ]
    }

    /// Every event kind round-trips through its JSON line into the
    /// aggregates the health report derives from it.
    #[test]
    fn health_report_aggregates_a_full_journal() {
        let report = HealthReport::from_journal(&journal_of(&sample_events())).unwrap();
        assert_eq!(report.name, "t");
        assert_eq!((report.cells, report.max_insts), (3, 500));
        assert_eq!(report.threads, 2);
        assert_eq!(report.completed, 2, "one resumed + one ok");
        assert_eq!(report.resumed, 1);
        assert_eq!(report.failed, 1, "the quarantined cell");
        assert_eq!(report.retries, 1);
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.errors_by_category.get("timeout"), Some(&1));
        assert_eq!(report.ckpt_writes, 1);
        assert_eq!(report.ckpt_write_us, 4);
        assert_eq!(report.sweep_wall_us, 1000);
        assert!(report.ended);
        assert!(!report.healthy(), "a failed cell is unhealthy");
        assert_eq!(report.cell_walls_us, vec![(0, 900), (1, 300)]);
        assert_eq!(report.stragglers(1), vec![(0, 900)]);
        assert_eq!(report.worker_busy_us.get(&0), Some(&798));
        assert!(report.utilization() > 0.0);
        let rendered = report.render(3);
        assert!(rendered.contains("2/3 cells completed"), "{rendered}");
        assert!(rendered.contains("errors[timeout]"), "{rendered}");
    }

    /// Cache events aggregate into the health report: hits and misses
    /// count cells, trace evictions sum their deltas, and the render
    /// surfaces both — while journals without cache events keep their old
    /// output (the lines are elided entirely).
    #[test]
    fn cache_events_aggregate_and_render() {
        let mut events = sample_events();
        events.insert(1, (1, Event::CacheHit { cell: 0 }));
        events.insert(2, (1, Event::CacheHit { cell: 1 }));
        events.insert(3, (1, Event::CacheMiss { cell: 2 }));
        events.push((1001, Event::TraceEvicted { count: 2 }));
        events.push((1002, Event::TraceEvicted { count: 3 }));
        let report = HealthReport::from_journal(&journal_of(&events)).unwrap();
        assert_eq!(report.cache_hits, 2);
        assert_eq!(report.cache_misses, 1);
        assert_eq!(report.trace_evictions, 5);
        let rendered = report.render(0);
        assert!(rendered.contains("result cache: 2 hits, 1 misses (67% hit rate)"), "{rendered}");
        assert!(rendered.contains("trace cache: 5 eviction(s)"), "{rendered}");

        let plain = HealthReport::from_journal(&journal_of(&sample_events())).unwrap();
        assert_eq!(plain.cache_hits + plain.cache_misses, 0);
        let rendered = plain.render(0);
        assert!(!rendered.contains("result cache"), "{rendered}");
        assert!(!rendered.contains("trace cache"), "{rendered}");
    }

    /// The journal reader shares the checkpoint loader's semantics: a torn
    /// final line is dropped, corruption anywhere else is an error.
    #[test]
    fn torn_final_line_tolerated_corruption_elsewhere_rejected() {
        let full = journal_of(&sample_events());
        let torn = &full[..full.len() - 15];
        let report = HealthReport::from_journal(torn).unwrap();
        assert!(!report.ended, "the sweep-end line was the torn one");
        assert_eq!(report.completed, 2);

        let mut lines: Vec<&str> = full.lines().collect();
        lines[3] = "{\"t_us\": oops";
        let corrupt = lines.join("\n") + "\n";
        assert!(HealthReport::from_journal(&corrupt).is_err());

        assert!(HealthReport::from_journal("").is_err());
        assert!(HealthReport::from_journal("{\"other\": 1}\n").is_err());
    }

    /// A journal without `sweep-end` (killed) still reports, timing the
    /// sweep to its last observed event.
    #[test]
    fn killed_journal_reports_without_sweep_end() {
        let events = &sample_events()[..8]; // stop before quarantine + end
        let report = HealthReport::from_journal(&journal_of(events)).unwrap();
        assert!(!report.ended);
        assert_eq!(report.sweep_wall_us, 905, "last event timestamp");
        assert_eq!(report.failed, 0);
        assert!(!report.healthy(), "unended sweeps are never healthy");
    }

    /// The Chrome exporter pairs starts with ends per worker lane and
    /// names every lane; the output is a single parseable JSON object.
    #[test]
    fn chrome_trace_is_valid_and_pairs_spans() {
        let json = chrome_trace_json("t", &sample_events());
        let doc = Json::parse(&json).expect("chrome trace parses");
        let events = doc.at("traceEvents").and_then(Json::as_arr).expect("traceEvents");
        let spans: Vec<&Json> = events
            .iter()
            .filter(|e| e.at("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        // Two attempt spans + one checkpoint append.
        assert_eq!(spans.len(), 3);
        let cell_span = spans
            .iter()
            .find(|e| e.at("name").and_then(Json::as_str) == Some("compress cell 1"))
            .expect("attempt span named by benchmark and cell");
        assert_eq!(cell_span.at("ts").and_then(Json::as_u64), Some(2));
        assert_eq!(cell_span.at("dur").and_then(Json::as_u64), Some(498));
        assert!(events.iter().any(|e| {
            e.at("name").and_then(Json::as_str) == Some("thread_name")
                && e.at("args.name").and_then(Json::as_str) == Some("ce-cell-0")
        }));
        assert!(events.iter().any(|e| {
            e.at("name").and_then(Json::as_str) == Some("backoff cell 1")
        }));
    }

    /// A disabled handle is inert: no allocation behind it, `enabled`
    /// false, emits are no-ops.
    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.enabled());
        tel.emit(Event::SweepEnd { ok: 0, failed: 0, wall_us: 0 });
        assert_eq!(format!("{tel:?}"), "Telemetry(off)");
    }

    /// A live handle journals exactly what was emitted, flushed per line.
    #[test]
    fn live_handle_journals_events() {
        let dir = std::env::temp_dir().join(format!("ce-tel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.tel.jsonl");
        let tel = Telemetry::create(
            &TelemetryConfig {
                name: "t".into(),
                journal: Some(path.clone()),
                chrome_out: None,
                progress: false,
            },
            vec![1, 2, 3],
            500,
        )
        .unwrap();
        assert!(tel.enabled());
        assert_eq!(format!("{tel:?}"), "Telemetry(on)");
        for (_, ev) in sample_events() {
            tel.emit(ev);
        }
        let report =
            HealthReport::from_journal(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(report.completed, 2);
        assert_eq!(report.cells, 3);
        assert!(report.ended);
        std::fs::remove_dir_all(&dir).ok();
    }
}
