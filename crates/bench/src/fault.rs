//! Seeded fault-injection campaign over the whole simulator stack.
//!
//! The robustness claim this repo makes is not "nothing ever fails" but
//! "**no fault is silent**": a corrupted trace file, a config pushed to a
//! validation boundary, or a transient scheduler fault must either be
//! *rejected* by a validation layer, *caught* by the invariant checker,
//! or be *provably harmless* (the observable result is unchanged). This
//! module generates a deterministic, seeded campaign across all three
//! fault classes and classifies every case; one [`Outcome::Silent`] case
//! fails the campaign (and CI, via the `faultcampaign` binary).
//!
//! | class | injector | acceptable outcomes |
//! |---|---|---|
//! | trace corruption | [`corrupt_trace_text`] | parse error; identical parse; different-but-valid trace that simulates cleanly under the checker |
//! | config perturbation | seeded field mutation | `validate()` rejection; clean checked run |
//! | scheduler fault | [`FaultSpec`] gate | checker abort; deadlock/panic containment; bit-identical stats (masked) |

use std::time::{Duration, Instant};

use ce_sim::{machine, FaultKind, FaultSpec, SimConfig, SimError, SimStats, Simulator};
use ce_workloads::{
    corrupt_trace_text, parse_trace, trace_cached, trace_io::format_trace, Benchmark, Trace,
    TraceCorruption,
};
use rand::{Rng, SeedableRng, StdRng};

/// How one injected fault played out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A validation layer (parser, config validator, invariant checker,
    /// panic containment) rejected or caught the fault, loudly.
    Detected,
    /// The fault did not change the observable input or output at all.
    Harmless,
    /// The fault produced a *different but self-consistently valid* input
    /// (e.g. a dropped trace line) that the stack processed cleanly — the
    /// result legitimately differs because the input legitimately differs.
    Visible,
    /// The injected fault never fired (e.g. an injection cycle past the
    /// end of the run): statistics are bit-identical to the clean run.
    Masked,
    /// The fault corrupted state or crashed the stack without any layer
    /// catching it. This is the failure the campaign exists to find.
    Silent,
}

impl Outcome {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Detected => "detected",
            Outcome::Harmless => "harmless",
            Outcome::Visible => "visible",
            Outcome::Masked => "masked",
            Outcome::Silent => "silent",
        }
    }
}

/// One classified campaign case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// What was injected, e.g. `trace/bit-flip seed=7`.
    pub name: String,
    /// How it played out.
    pub outcome: Outcome,
    /// The detecting error, or what made the case harmless/visible.
    pub detail: String,
    /// Wall time of this case: injection, parse, and any checked runs.
    pub wall: Duration,
}

/// The full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Every case, in generation order.
    pub cases: Vec<CaseReport>,
}

impl CampaignReport {
    /// Number of cases with the given outcome.
    pub fn count(&self, outcome: Outcome) -> usize {
        self.cases.iter().filter(|c| c.outcome == outcome).count()
    }

    /// The silent cases — each one is a bug.
    pub fn silent(&self) -> impl Iterator<Item = &CaseReport> {
        self.cases.iter().filter(|c| c.outcome == Outcome::Silent)
    }

    /// Whether every fault was detected, harmless, visible, or masked.
    pub fn is_clean(&self) -> bool {
        self.count(Outcome::Silent) == 0
    }
}

/// Instruction cap for campaign simulations: small enough that ~100
/// checked runs stay fast, large enough to exercise every pipeline stage.
const CAMPAIGN_INSTS: u64 = 2_000;

/// Runs `f` on a `ce-cell-*`-named thread so a panic is contained (and,
/// via the runner's panic hook, kept off stderr) and returned as the
/// panic message.
fn contained<T: Send>(f: impl FnOnce() -> T + Send) -> Result<T, String> {
    crate::runner::install_cell_panic_hook();
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("ce-cell-fault".into())
            .spawn_scoped(scope, f)
            .expect("spawning fault-containment thread")
            .join()
    })
    .map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panicked with a non-string payload".into())
    })
}

/// Runs one simulation with the invariant checker on, containing panics.
fn checked_run(mut cfg: SimConfig, trace: &Trace) -> Result<SimStats, String> {
    cfg.check = true;
    Simulator::try_new(cfg).map_err(|e| e.to_string())?;
    // The simulator itself is built inside the containment thread (it is
    // not Send); the config is Copy and the trace is shared by reference.
    match contained(move || Simulator::try_new(cfg).expect("validated above").try_run(trace)) {
        Ok(Ok(stats)) => Ok(stats),
        Ok(Err(e)) => Err(e.to_string()),
        Err(panic_msg) => Err(panic_msg),
    }
}

/// Class 1: corrupt a serialized trace and prove the parser (or, for
/// corruptions that still parse, the checked simulator) accounts for it.
fn trace_corruption_cases(seed: u64, cases: &mut Vec<CaseReport>) {
    let trace = trace_cached(Benchmark::Compress, CAMPAIGN_INSTS)
        .expect("bundled kernel traces");
    let text = format_trace(&trace);
    let cfg = machine::baseline_8way();
    for kind in TraceCorruption::ALL {
        for s in 0..12u64 {
            let name = format!("trace/{kind} seed={s}");
            let start = Instant::now();
            let mutated = corrupt_trace_text(&text, kind, seed ^ (s << 8) ^ kind as u64);
            let (outcome, detail) = match parse_trace(&mutated) {
                Err(e) => (Outcome::Detected, format!("parser: {e}")),
                Ok(parsed) if parsed == *trace => {
                    (Outcome::Harmless, "parses to the identical trace".into())
                }
                Ok(parsed) => match checked_run(cfg, &parsed) {
                    Ok(_) => (
                        Outcome::Visible,
                        "parses to a different valid trace; checked run is clean".into(),
                    ),
                    // The checker catching a parseable-but-inconsistent
                    // trace downstream still counts as caught…
                    Err(e) if e.contains("invariant checker") => {
                        (Outcome::Detected, format!("checker: {e}"))
                    }
                    // …but a panic or deadlock means invalid data sailed
                    // through parse validation: exactly the silent class.
                    Err(e) => (Outcome::Silent, format!("escaped validation: {e}")),
                },
            };
            cases.push(CaseReport { name, outcome, detail, wall: start.elapsed() });
        }
    }
}

/// Class 2: perturb configuration fields toward their validation
/// boundaries; every perturbation must be rejected by [`SimConfig::validate`]
/// or produce a config the checked simulator handles cleanly.
fn config_perturbation_cases(seed: u64, cases: &mut Vec<CaseReport>) {
    let trace =
        trace_cached(Benchmark::Li, CAMPAIGN_INSTS).expect("bundled kernel traces");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0f1);
    for i in 0..40 {
        let start = Instant::now();
        let mut cfg = match rng.gen_range(0..3u32) {
            0 => machine::baseline_8way(),
            1 => machine::dependence_8way(),
            _ => machine::clustered_fifos_8way(),
        };
        let which = rng.gen_range(0..10u32);
        let field = match which {
            0 => {
                cfg.clusters = 1;
                cfg.issue_width = rng.gen_range(0..21);
                "issue_width"
            }
            1 => {
                cfg.clusters = rng.gen_range(0..6);
                "clusters"
            }
            2 => {
                cfg.bpred.history_bits = rng.gen_range(28..36);
                "bpred.history_bits"
            }
            3 => {
                cfg.bpred.counters = rng.gen_range(0..5000);
                "bpred.counters"
            }
            4 => {
                cfg.physical_regs = rng.gen_range(30..40);
                "physical_regs"
            }
            5 => {
                cfg.scheduler = ce_sim::SchedulerKind::Fifos {
                    fifos_per_cluster: rng.gen_range(0..3),
                    depth: rng.gen_range(0..3),
                };
                "scheduler(fifos)"
            }
            6 => {
                cfg.max_inflight = rng.gen_range(0..4);
                "max_inflight"
            }
            7 => {
                cfg.fetch_width = rng.gen_range(0..3);
                cfg.retire_width = rng.gen_range(0..3);
                "fetch/retire width"
            }
            8 => {
                cfg.scheduler =
                    ce_sim::SchedulerKind::CentralWindow { size: rng.gen_range(0..5) };
                "scheduler(window)"
            }
            _ => {
                cfg.regwrite_delay = rng.gen_range(0..200);
                cfg.intercluster_extra = rng.gen_range(0..200);
                "operand delays"
            }
        };
        let name = format!("config/{field} case={i}");
        let (outcome, detail) = match cfg.validate() {
            Err(e) => (Outcome::Detected, format!("validate: {e}")),
            Ok(()) => match checked_run(cfg, &trace) {
                Ok(_) => {
                    (Outcome::Harmless, "valid boundary config; checked run is clean".into())
                }
                Err(e) => (Outcome::Silent, format!("validation accepted it, then: {e}")),
            },
        };
        cases.push(CaseReport { name, outcome, detail, wall: start.elapsed() });
    }
}

/// Class 3: arm the simulator's own fault gate ([`SimConfig::fault`]) and
/// prove the invariant checker catches every fault that changes state —
/// anything it misses must be bit-identical to the clean run (masked).
fn scheduler_injection_cases(seed: u64, cases: &mut Vec<CaseReport>) {
    let trace =
        trace_cached(Benchmark::Li, CAMPAIGN_INSTS).expect("bundled kernel traces");
    let cfg = machine::baseline_8way();
    let clean = checked_run(cfg, &trace).expect("clean checked run");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfa17);
    let horizon = clean.cycles + clean.cycles / 2;
    for kind in FaultKind::ALL {
        for c in 0..6u64 {
            // Cycles spread across (and past) the run, seeded so campaigns
            // with different seeds probe different cycles.
            let at_cycle = if c == 5 { horizon } else { rng.gen_range(0..clean.cycles) };
            let name = format!("sched/{kind} cycle={at_cycle}");
            let start = Instant::now();
            let mut faulty = cfg;
            faulty.fault = Some(FaultSpec { kind, at_cycle });
            faulty.check = true;
            faulty.validate().expect("faulty config still validates");
            let (outcome, detail) = match contained(|| {
                Simulator::try_new(faulty).expect("validated above").try_run(&trace)
            }) {
                Ok(Ok(stats)) => {
                    if stats.fingerprint() == clean.fingerprint() {
                        (Outcome::Masked, "statistics bit-identical to clean run".into())
                    } else {
                        (
                            Outcome::Silent,
                            format!(
                                "fingerprint diverged undetected: {} vs {}",
                                stats.fingerprint(),
                                clean.fingerprint()
                            ),
                        )
                    }
                }
                Ok(Err(e @ SimError::Checker { .. })) => {
                    (Outcome::Detected, format!("checker: {e}"))
                }
                Ok(Err(e)) => (Outcome::Detected, format!("aborted loudly: {e}")),
                Err(msg) => {
                    if kind == FaultKind::PanicCell {
                        (Outcome::Detected, format!("contained panic: {msg}"))
                    } else {
                        (Outcome::Silent, format!("unexpected panic: {msg}"))
                    }
                }
            };
            cases.push(CaseReport { name, outcome, detail, wall: start.elapsed() });
        }
    }
}

/// Runs the full campaign (118 cases: 48 trace corruptions, 40 config
/// perturbations, 30 scheduler injections), deterministically for a given
/// seed.
pub fn run_campaign(seed: u64) -> CampaignReport {
    let mut cases = Vec::with_capacity(120);
    trace_corruption_cases(seed, &mut cases);
    config_perturbation_cases(seed, &mut cases);
    scheduler_injection_cases(seed, &mut cases);
    CampaignReport { cases }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline guarantee: a hundred-plus seeded faults across all
    /// three classes, zero silent.
    #[test]
    fn campaign_finds_no_silent_faults() {
        let report = run_campaign(0xce);
        assert!(report.cases.len() >= 100, "only {} cases", report.cases.len());
        let silent: Vec<_> = report.silent().collect();
        assert!(
            silent.is_empty(),
            "{} silent fault(s): {:?}",
            silent.len(),
            silent.iter().map(|c| format!("{}: {}", c.name, c.detail)).collect::<Vec<_>>()
        );
        // Sanity: the campaign actually exercised both detection and the
        // benign outcomes — an all-masked campaign would prove nothing.
        assert!(report.count(Outcome::Detected) > 20, "{report:?}");
        assert!(
            report.count(Outcome::Harmless)
                + report.count(Outcome::Visible)
                + report.count(Outcome::Masked)
                > 0
        );
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = run_campaign(7);
        let b = run_campaign(7);
        assert_eq!(a.cases.len(), b.cases.len());
        for (x, y) in a.cases.iter().zip(&b.cases) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.outcome, y.outcome);
        }
    }
}
