//! # ce-bench — the experiment harness
//!
//! One binary per table and figure of the paper's evaluation; each prints
//! the same rows/series the paper reports, alongside the paper's published
//! values where the paper states them. Run them all with:
//!
//! ```text
//! for exp in fig03_rename fig05_wakeup fig06_wakeup_scaling fig08_select \
//!            tab01_bypass tab02_overall tab04_restable \
//!            fig13_ipc fig15_clustered fig17_organizations \
//!            speedup_summary ablations; do
//!     cargo run --release -p ce-bench --bin $exp
//! done
//! ```
//!
//! The library half holds shared helpers: benchmark trace loading (with an
//! instruction cap from `CE_MAX_INSTS`), the parallel experiment
//! [`runner`], and table formatting.
//!
//! ## Environment knobs
//!
//! | variable | default | effect |
//! |---|---|---|
//! | `CE_MAX_INSTS` | 2 000 000 | per-benchmark dynamic instruction cap |
//! | `CE_THREADS` | available parallelism | worker threads in [`runner`] |
//!
//! Experiment cells are deterministic per `(benchmark, config)`, so
//! `CE_THREADS` changes only wall-clock time, never results. Traces are
//! memoized process-wide ([`ce_workloads::trace_cached`]): each kernel is
//! assembled and emulated once no matter how many cells consume it.

use std::sync::Arc;

use ce_workloads::{trace_cached, Benchmark, Trace};

pub mod api;
pub mod chaos;
pub mod checkpoint;
pub mod cli;
pub mod delay_csv;
pub mod explore;
pub mod fault;
pub mod fsck;
pub mod iofault;
pub mod json;
pub mod manifest;
pub mod metrics_check;
pub mod runner;
#[cfg(unix)]
pub mod service;
pub mod store;
pub mod telemetry;

/// Default per-benchmark dynamic instruction cap. Every kernel completes
/// below this, so by default the experiments run each program to
/// completion, like the paper's 0.5 B-instruction cap did.
pub const DEFAULT_MAX_INSTS: u64 = 2_000_000;

/// The instruction cap, overridable via the `CE_MAX_INSTS` environment
/// variable (useful to shorten smoke runs).
pub fn max_insts() -> u64 {
    std::env::var("CE_MAX_INSTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_MAX_INSTS)
}

/// Loads the dynamic trace for one benchmark through the process-wide
/// trace cache.
///
/// # Panics
///
/// Panics if the bundled kernel fails to assemble or run — that would be a
/// bug in `ce-workloads`, not an experiment outcome.
pub fn load_trace(benchmark: Benchmark) -> Arc<Trace> {
    trace_cached(benchmark, max_insts())
        .unwrap_or_else(|e| panic!("loading {benchmark}: {e}"))
}

/// Loads traces for all seven benchmarks, in figure order.
pub fn load_all_traces() -> Vec<(Benchmark, Arc<Trace>)> {
    Benchmark::all().into_iter().map(|b| (b, load_trace(b))).collect()
}

/// Prints a rule line matching a header's width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a picosecond value for tables.
pub fn ps(value: f64) -> String {
    format!("{value:8.1}")
}

/// Formats a relative deviation between a measured and a reference value.
pub fn deviation(measured: f64, reference: f64) -> String {
    format!("{:+5.1}%", (measured / reference - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_formatting() {
        assert_eq!(deviation(110.0, 100.0), "+10.0%");
        assert_eq!(deviation(95.0, 100.0), " -5.0%");
    }

    #[test]
    fn max_insts_default() {
        // Unless the env var is set in the test environment, the default
        // applies.
        if std::env::var("CE_MAX_INSTS").is_err() {
            assert_eq!(max_insts(), DEFAULT_MAX_INSTS);
        }
    }

    #[test]
    fn traces_load() {
        let t = load_trace(Benchmark::Compress);
        assert!(t.len() > 10_000);
    }
}
