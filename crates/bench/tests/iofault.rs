//! Fault-injection integration tests: one end-to-end scenario per
//! non-crash fault class, each driving a real durability flow of the
//! experiment service through the `ce_bench::iofault` seam. (The crash
//! class needs a process to die; its end-to-end coverage lives in
//! `tests/chaos.rs` and the `cechaos` grid.)
//!
//! The shared shape: arm a thread-local [`FailPlan`], run the real
//! code path, assert the error surfaces *and* that the on-disk state is
//! either untouched or recoverable — then re-run disarmed and assert
//! convergence to the same bytes a never-faulted run produces.

use std::path::PathBuf;

use ce_bench::chaos::synthetic_result;
use ce_bench::checkpoint::{classify_journal, write_atomic, CheckpointSpec, Journal, JournalClass};
use ce_bench::iofault::{with_plan, FailPlan, FaultClass};
use ce_bench::store::{Lookup, ResultStore};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ce-iofault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tmpfiles(dir: &std::path::Path) -> Vec<String> {
    std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp"))
        .collect()
}

/// ENOSPC against a result-store insert: the error surfaces with the
/// real OS code, the store stays entry-free and tempfile-free, and a
/// disarmed retry converges to a servable entry.
#[test]
fn enospc_store_insert_fails_clean_and_retry_converges() {
    let dir = temp_dir("enospc");
    let store = ResultStore::open(&dir).unwrap();
    let result = synthetic_result(7);

    let (outcome, ops) = with_plan(FailPlan::one(0, FaultClass::Enospc), || {
        store.insert("00000000000000aa", "chaos-v1", &result)
    });
    let err = outcome.expect_err("the injected ENOSPC must surface");
    assert_eq!(err.raw_os_error(), Some(28), "ENOSPC, the real errno");
    assert!(ops >= 1, "the plan fired");
    assert_eq!(store.len(), 0, "no partial entry");
    assert_eq!(tmpfiles(&dir), Vec::<String>::new(), "no orphaned tempfile");

    store.insert("00000000000000aa", "chaos-v1", &result).unwrap();
    match store.lookup("00000000000000aa", "chaos-v1") {
        Lookup::Hit(got) => assert_eq!(got.stats.cycles, result.stats.cycles),
        other => panic!("expected a hit after the retry, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// EIO against a checkpoint-journal append: the record call errors, but
/// every previously recorded cell survives and a resumed journal
/// recovers them — the restarted sweep re-simulates only the lost cell.
#[test]
fn eio_journal_append_keeps_prior_records_resumable() {
    let dir = temp_dir("eio");
    let spec = CheckpointSpec::for_output(&dir.join("sweep.csv"), true);
    let id = 0xBEEF;

    let (mut journal, recovered) = Journal::open(&spec, id, 3).unwrap();
    assert!(recovered.iter().all(Option::is_none));
    journal.record(0, &synthetic_result(0)).unwrap();

    // Op 0 of the faulted scope is the very next append.
    let (outcome, _) = with_plan(FailPlan::one(0, FaultClass::Eio), || {
        journal.record(1, &synthetic_result(1))
    });
    assert_eq!(
        outcome.expect_err("the injected EIO must surface").raw_os_error(),
        Some(5)
    );
    drop(journal);

    let (mut journal, recovered) = Journal::open(&spec, id, 3).unwrap();
    assert!(recovered[0].is_some(), "cell 0 survived the faulted append");
    assert!(recovered[1].is_none(), "the faulted cell is owed again");
    journal.record(1, &synthetic_result(1)).unwrap();
    journal.record(2, &synthetic_result(2)).unwrap();
    drop(journal);

    let (_, recovered) = Journal::open(&spec, id, 3).unwrap();
    assert!(recovered.iter().all(Option::is_some), "full recovery after the retry");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn write against a journal append: half the line lands on disk.
/// The torn *final* line is the tolerated kill -9 signature — the
/// classifier calls it torn-tail, and a resume silently drops it while
/// keeping every complete record.
#[test]
fn torn_journal_append_leaves_recoverable_torn_tail() {
    let dir = temp_dir("torn");
    let spec = CheckpointSpec::for_output(&dir.join("sweep.csv"), true);
    let id = 0xF00D;

    let (mut journal, _) = Journal::open(&spec, id, 2).unwrap();
    journal.record(0, &synthetic_result(0)).unwrap();
    let (outcome, _) = with_plan(FailPlan::one(0, FaultClass::TornWrite), || {
        journal.record(1, &synthetic_result(1))
    });
    assert!(outcome.is_err(), "a torn write reports the short write as an error");
    drop(journal);

    let text = std::fs::read_to_string(&spec.path).unwrap();
    assert!(!text.ends_with('\n'), "the torn half-line is on disk");
    assert_eq!(classify_journal(&text), JournalClass::TornTail);

    let (mut journal, recovered) = Journal::open(&spec, id, 2).unwrap();
    assert!(recovered[0].is_some(), "the complete record survives the torn tail");
    assert!(recovered[1].is_none(), "the torn record is dropped, not half-parsed");
    journal.record(1, &synthetic_result(1)).unwrap();
    drop(journal);
    let (_, recovered) = Journal::open(&spec, id, 2).unwrap();
    assert!(recovered.iter().all(Option::is_some));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A failed fsync against an atomic file write: the destination keeps
/// its old bytes (rename never ran), no tempfile is left behind, and
/// the disarmed retry publishes the new content.
#[test]
fn failed_fsync_write_atomic_preserves_old_content() {
    let dir = temp_dir("fsync");
    let path = dir.join("results.csv");
    write_atomic(&path, "old,content\n").unwrap();

    // write_atomic is create(0) → write(1) → fsync(2) → rename(3).
    let (outcome, ops) = with_plan(FailPlan::one(2, FaultClass::FailedFsync), || {
        write_atomic(&path, "new,content\n")
    });
    assert!(outcome.is_err(), "the fsync failure must surface, not be swallowed");
    assert_eq!(ops, 3, "the rename after the failed fsync never ran");
    assert_eq!(std::fs::read_to_string(&path).unwrap(), "old,content\n");
    assert_eq!(tmpfiles(&dir), Vec::<String>::new(), "the tempfile was cleaned up");

    write_atomic(&path, "new,content\n").unwrap();
    assert_eq!(std::fs::read_to_string(&path).unwrap(), "new,content\n");
    let _ = std::fs::remove_dir_all(&dir);
}
