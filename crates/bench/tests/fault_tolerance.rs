//! End-to-end contracts of the fault-tolerant sweep engine: panic
//! isolation, deadline + retry policy, quarantine of deterministic
//! failures, checkpoint resume, and the headline guarantee — a sweep
//! killed with SIGKILL mid-run resumes to a **byte-identical** CSV,
//! re-executing only the unfinished cells.

use ce_bench::checkpoint::CheckpointSpec;
use ce_bench::runner::{self, try_run_timed, RunPolicy, SweepOptions};
use ce_sim::{machine, FaultKind, FaultSpec};
use ce_workloads::Benchmark;
use std::path::{Path, PathBuf};
use std::time::Duration;

const INSTS: u64 = 2_000;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ce-ft-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A cell that unwinds mid-simulation must come back as a classified
/// `RunError`, and its neighbours must complete untouched.
#[test]
fn panicking_cell_is_isolated_and_classified() {
    let good = machine::baseline_8way();
    let mut bad = good;
    bad.fault = Some(FaultSpec { kind: FaultKind::PanicCell, at_cycle: 50 });

    let jobs = [
        (Benchmark::Compress, good),
        (Benchmark::Compress, bad),
        (Benchmark::Li, good),
    ];
    let results = try_run_timed(&jobs, INSTS);
    assert!(results[0].is_ok(), "{:?}", results[0]);
    assert!(results[2].is_ok(), "{:?}", results[2]);
    let err = results[1].as_ref().expect_err("panic cell must fail");
    assert_eq!(err.category(), "cell-panic", "{err}");
    assert!(err.message().contains("fault"), "{err}");
}

/// A cell that blows its deadline is a transient failure: retried up to
/// the attempt budget, then reported as a timeout.
#[test]
fn deadline_is_enforced_with_bounded_retries() {
    let jobs = [(Benchmark::Compress, machine::baseline_8way())];
    let opts = SweepOptions {
        policy: RunPolicy {
            cell_timeout: Some(Duration::from_nanos(1)),
            max_attempts: 2,
            backoff_base: Duration::from_millis(1),
            quarantine: true,
        },
        ..SweepOptions::default()
    };
    let summary = runner::run_sweep_ft(&jobs, 500_000, &opts).expect("no journal in play");
    assert_eq!(summary.failures.len(), 1);
    let failure = &summary.failures[0];
    assert_eq!(failure.error.category(), "timeout", "{failure}");
    assert!(failure.error.is_transient());
    assert_eq!(failure.attempts, 2, "{failure}");
}

/// Two identical deterministically-failing jobs: the first burns its
/// attempts, the second is quarantined without re-running.
#[test]
fn deterministic_failures_are_quarantined() {
    let mut bad = machine::baseline_8way();
    bad.bpred.history_bits = 99; // config-invalid, deterministic
    let jobs = [(Benchmark::Compress, bad), (Benchmark::Compress, bad)];
    let summary =
        runner::run_sweep_ft(&jobs, INSTS, &SweepOptions::default()).expect("no journal");
    assert_eq!(summary.failures.len(), 2);
    let by_index =
        |i: usize| summary.failures.iter().find(|f| f.index == i).expect("failure present");
    assert_eq!(by_index(0).quarantined_after, None);
    assert_eq!(by_index(1).quarantined_after, Some(0), "{}", by_index(1));
    assert_eq!(by_index(1).error.category(), "config-invalid");
}

/// A sweep with a failing cell keeps its journal; re-running with
/// `resume` replays the finished cells from disk (same stats, `resumed`
/// counted) and re-executes only the failure.
#[test]
fn journal_resume_replays_finished_cells() {
    let dir = temp_dir("resume");
    let out = dir.join("sweep.csv");

    let good = machine::baseline_8way();
    let mut bad = good;
    bad.fault = Some(FaultSpec { kind: FaultKind::PanicCell, at_cycle: 50 });
    let jobs =
        [(Benchmark::Compress, good), (Benchmark::Li, good), (Benchmark::Compress, bad)];

    let opts = |resume| SweepOptions {
        checkpoint: Some(CheckpointSpec::for_output(&out, resume)),
        ..SweepOptions::default()
    };
    let first = runner::run_sweep_ft(&jobs, INSTS, &opts(false)).expect("journal io");
    assert_eq!(first.failures.len(), 1);
    assert_eq!(first.resumed, 0);
    let ckpt = dir.join("sweep.ckpt.jsonl");
    assert!(ckpt.exists(), "journal must survive a failed sweep");

    let second = runner::run_sweep_ft(&jobs, INSTS, &opts(true)).expect("journal io");
    assert_eq!(second.resumed, 2, "both good cells replay from the journal");
    assert_eq!(second.failures.len(), 1, "the bad cell re-runs and fails again");
    for i in [0, 1] {
        assert_eq!(
            first.cells[i].as_ref().expect("ran").stats.fingerprint(),
            second.cells[i].as_ref().expect("replayed").stats.fingerprint(),
            "cell {i} changed across resume"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// The headline guarantee, end to end on a real sweep binary: SIGKILL
/// the process mid-sweep, re-run with `--resume`, and the final CSV is
/// byte-identical to an uninterrupted run's.
#[test]
fn sigkill_then_resume_reproduces_the_csv_byte_for_byte() {
    let dir = temp_dir("kill");
    let reference_csv = dir.join("reference.csv");
    let killed_csv = dir.join("killed.csv");

    let fig13 = |out: &Path| {
        let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_fig13_ipc"));
        cmd.env("CE_MAX_INSTS", "20000")
            .env("CE_THREADS", "1")
            .arg("--out")
            .arg(out)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null());
        cmd
    };

    // Uninterrupted reference run.
    let status = fig13(&reference_csv).status().expect("fig13 runs");
    assert!(status.success());
    let reference = std::fs::read(&reference_csv).expect("reference CSV");

    // Interrupted run: SIGKILL as soon as the journal holds one record
    // but before the CSV lands.
    let ckpt = dir.join("killed.ckpt.jsonl");
    let mut child = fig13(&killed_csv).spawn().expect("fig13 spawns");
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        let cells_done = std::fs::read_to_string(&ckpt)
            .map(|s| s.lines().count().saturating_sub(1))
            .unwrap_or(0);
        if cells_done >= 1 {
            break;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("sweep finished before it could be killed ({status}); cap too small");
        }
        assert!(std::time::Instant::now() < deadline, "no checkpoint record after 120s");
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");
    assert!(!killed_csv.exists(), "CSV must not exist after a killed sweep");
    let journal_before = std::fs::read_to_string(&ckpt).expect("journal survives the kill");

    // Resume: finishes the sweep, replaying what the journal holds.
    let status = fig13(&killed_csv).arg("--resume").status().expect("fig13 resumes");
    assert!(status.success());
    let resumed = std::fs::read(&killed_csv).expect("resumed CSV");
    assert_eq!(
        resumed, reference,
        "resumed CSV differs from the uninterrupted run"
    );
    // Sanity: the resume genuinely reused the journal rather than
    // starting over (the journal is deleted only after a clean finish).
    assert!(!ckpt.exists(), "journal should be cleaned up after the clean resume");
    assert!(
        journal_before.lines().count() >= 2,
        "kill happened before any record was journaled"
    );

    std::fs::remove_dir_all(&dir).ok();
}
