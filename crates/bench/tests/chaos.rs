//! Chaos end-to-end tests: the storm-proofing contract exercised
//! through the real binaries.
//!
//! - an injected crash fault (`CE_IOFAULT=crash@K`) kills the daemon
//!   mid-job; a restart recovers the job with **zero duplicate
//!   simulation** and a resubmission is fully cache-served,
//! - the seeded protocol fuzz corpus is rejected line by line with
//!   structured errors while the connection (and daemon) stay alive,
//! - orphaned `*.tmp` files are swept at daemon startup,
//! - `cesimd --fsck` honors its exit discipline: 0 clean, 1 corruption
//!   found (quarantined, bytes preserved),
//! - the `cechaos --grid-only` campaign passes end to end (the crash
//!   column spawns real aborting subprocesses).

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ce_bench::chaos::fuzz_corpus;
use ce_bench::json::Json;
use ce_bench::service::MAX_REQUEST_LINE;

const INSTS: &str = "20000";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ce-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn daemon(state: &Path, socket: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_cesimd"));
    cmd.env("CE_MAX_INSTS", INSTS)
        .env("CE_THREADS", "1")
        .env_remove("CE_IOFAULT")
        .arg("--state")
        .arg(state)
        .arg("--socket")
        .arg(socket)
        .arg("--quiet")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    cmd
}

fn ctl(socket: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_cesimctl"));
    cmd.env("CE_MAX_INSTS", INSTS).arg("--socket").arg(socket);
    cmd
}

fn wait_ready(socket: &Path, child: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let ok = ctl(socket)
            .arg("ping")
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .map(|s| s.success())
            .unwrap_or(false);
        if ok {
            return;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("cesimd exited during startup: {status}");
        }
        assert!(Instant::now() < deadline, "cesimd never became ready");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn shutdown(socket: &Path, child: &mut Child) {
    let _ = ctl(socket)
        .arg("shutdown")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status();
    let status = child.wait().expect("cesimd reaped");
    assert!(status.success(), "cesimd shutdown was not clean: {status}");
}

/// One-line request on a fresh connection; the first response line.
fn request_line(socket: &Path, line: &str) -> Option<String> {
    let mut stream = UnixStream::connect(socket).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
    stream.write_all(line.as_bytes()).ok()?;
    stream.write_all(b"\n").ok()?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).ok()?;
    (!response.is_empty()).then(|| response.trim().to_owned())
}

/// Polls `status` until the daemon reports no queued and no running
/// jobs (WAL-recovered work included).
fn wait_drained(socket: &Path) {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        if let Some(line) = request_line(socket, "{\"op\": \"status\"}") {
            let doc = Json::parse(&line).expect("status is JSON");
            let queued = doc.at("queued").and_then(Json::as_u64).unwrap_or(0);
            let running = doc.at("running").and_then(Json::as_u64).unwrap_or(0);
            if queued == 0 && running == 0 {
                return;
            }
        }
        assert!(Instant::now() < deadline, "recovered jobs never drained");
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Cells settled by simulation (checkpoint-write events) and cache
/// hits, per telemetry journal.
fn exec_profile(journal: &Path) -> (std::collections::BTreeSet<u64>, usize) {
    let text = std::fs::read_to_string(journal)
        .unwrap_or_else(|e| panic!("reading {}: {e}", journal.display()));
    let mut written = std::collections::BTreeSet::new();
    let mut hits = 0usize;
    for line in text.lines().skip(1) {
        let Ok(doc) = Json::parse(line) else { continue };
        match doc.at("ev").and_then(Json::as_str) {
            Some("checkpoint-write") => {
                written.insert(doc.at("cell").and_then(Json::as_u64).expect("cell"));
            }
            Some("cache-hit") => hits += 1,
            _ => {}
        }
    }
    (written, hits)
}

fn fsck(state: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cesimd"))
        .arg("--fsck")
        .arg("--state")
        .arg(state)
        .output()
        .expect("cesimd --fsck runs")
}

/// Crash fault class, end to end: `CE_IOFAULT=crash@25` aborts the
/// daemon mid-job (after the WAL owns it), the state dir audits clean,
/// a restart finishes the job without re-simulating any durable cell,
/// and a resubmission is 100% cache-served.
#[test]
fn injected_crash_recovers_with_zero_duplicate_simulation() {
    let dir = temp_dir("crash");
    let state = dir.join("state");
    let socket = dir.join("d.sock");

    let mut d = daemon(&state, &socket)
        .env("CE_IOFAULT", "crash@25")
        .spawn()
        .expect("cesimd spawns");
    wait_ready(&socket, &mut d);
    // The submit dies with the daemon; all we need is the WAL record.
    let _ = ctl(&socket)
        .args(["submit", "fig13", "--quiet"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status();
    let status = d.wait().expect("reaped");
    assert_eq!(status.code(), None, "the injected crash must kill by signal: {status}");

    // The wreckage audits clean: torn tails and orphans at worst.
    let audit = fsck(&state);
    assert!(
        audit.status.success(),
        "post-crash fsck found corruption:\n{}",
        String::from_utf8_lossy(&audit.stdout)
    );

    // Restart (fault disarmed): the WAL replays the job to completion.
    let mut d = daemon(&state, &socket).spawn().expect("cesimd restarts");
    wait_ready(&socket, &mut d);
    wait_drained(&socket);

    // Zero duplicate simulation across the two executions of job 1.
    let (first, _) = exec_profile(&state.join("telemetry/job-1.exec-0.jsonl"));
    let (second, _) = exec_profile(&state.join("telemetry/job-1.exec-1.jsonl"));
    assert!(
        first.is_disjoint(&second),
        "cells simulated twice across the crash: {:?}",
        first.intersection(&second).collect::<Vec<_>>()
    );
    assert_eq!(first.len() + second.len(), 14, "all 14 cells settled exactly once");

    // A resubmission simulates nothing at all.
    let out = ctl(&socket).args(["submit", "fig13"]).output().expect("resubmit");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let (written, hits) = exec_profile(&state.join("telemetry/job-2.exec-0.jsonl"));
    assert!(written.is_empty(), "resubmission re-simulated {written:?}");
    assert_eq!(hits, 14);

    shutdown(&socket, &mut d);
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: the seeded fuzz corpus — oversized line first, then torn
/// JSON, binary junk, wrong-shape ops — is rejected with structured
/// error events, and the *same connection* then serves a ping and a
/// real submission. The daemon never dies and never goes silent.
#[test]
fn protocol_fuzz_rejected_and_connection_survives() {
    let dir = temp_dir("fuzz");
    let state = dir.join("state");
    let socket = dir.join("d.sock");
    let mut d = daemon(&state, &socket).spawn().expect("cesimd spawns");
    wait_ready(&socket, &mut d);

    let stream = UnixStream::connect(&socket).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    let corpus = fuzz_corpus(0xF022, 12, MAX_REQUEST_LINE);
    assert!(corpus[0].len() > MAX_REQUEST_LINE, "index 0 is the oversized probe");
    for (i, line) in corpus.iter().enumerate() {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut response = String::new();
        let n = reader.read_line(&mut response).expect("daemon answers fuzz");
        assert!(n > 0, "connection died on fuzz line {i}");
        let doc = Json::parse(response.trim())
            .unwrap_or_else(|e| panic!("fuzz line {i} drew a non-JSON response: {e}"));
        assert_eq!(
            doc.at("ev").and_then(Json::as_str),
            Some("error"),
            "fuzz line {i} was not rejected: {response}"
        );
        let kind = doc.at("kind").and_then(Json::as_str).unwrap_or("");
        assert!(
            kind == "proto" || kind == "config-invalid",
            "fuzz line {i} drew unexpected error kind {kind:?}"
        );
    }

    // The same connection still works: ping, then a real single-cell
    // sweep streamed to done.
    writer.write_all(b"{\"op\": \"ping\"}\n").unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(response.contains("pong"), "ping after fuzz: {response}");

    writer
        .write_all(
            b"{\"op\": \"submit\", \"spec\": {\"cells\": \
              [{\"bench\": \"compress\", \"machine\": \"window\"}]}}\n",
        )
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "stream died mid-job");
        let doc = Json::parse(line.trim()).unwrap();
        match doc.at("ev").and_then(Json::as_str) {
            Some("done") => break,
            Some("error") => panic!("submission after fuzz failed: {line}"),
            _ => assert!(Instant::now() < deadline, "job never finished"),
        }
    }

    shutdown(&socket, &mut d);
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite regression: orphaned `*.tmp` files (a crash between
/// tempfile creation and rename) are swept at daemon startup — both
/// the bare `.tmp` suffix and the `.tmp.<pid>` infix shape.
#[test]
fn orphan_tmp_files_swept_on_startup() {
    let dir = temp_dir("orphans");
    let state = dir.join("state");
    let socket = dir.join("d.sock");
    std::fs::create_dir_all(state.join("store")).unwrap();
    let orphans = [
        state.join("results.csv.tmp.4242"),
        state.join("store/feedbeef.json.tmp.99"),
        state.join("store/stale.tmp"),
    ];
    for path in &orphans {
        std::fs::write(path, "half-written").unwrap();
    }

    let mut d = daemon(&state, &socket).spawn().expect("cesimd spawns");
    wait_ready(&socket, &mut d);
    for path in &orphans {
        assert!(!path.exists(), "{} survived the startup sweep", path.display());
    }
    shutdown(&socket, &mut d);

    // Orphans are hygiene, not corruption: fsck on such a dir exits 0.
    std::fs::write(&orphans[0], "half-written").unwrap();
    let out = fsck(&state);
    assert!(out.status.success(), "orphans alone must not fail fsck");
    assert!(!orphans[0].exists(), "--fsck sweeps orphans too");
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: the `--fsck` exit discipline. A clean dir exits 0; a
/// corrupt store entry exits 1 and is *moved* to quarantine with its
/// bytes preserved; the repaired dir then exits 0.
#[test]
fn fsck_exit_discipline_and_quarantine() {
    let dir = temp_dir("fsck");
    let state = dir.join("state");
    std::fs::create_dir_all(state.join("store")).unwrap();

    let out = fsck(&state);
    assert!(out.status.success(), "clean dir must exit 0");

    let bad = state.join("store/00000000000000aa.json");
    std::fs::write(&bad, "{\"ce_result\": 1, \"key\": \"mismatched\"}").unwrap();
    let out = fsck(&state);
    assert_eq!(out.status.code(), Some(1), "corruption must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[fsck]"), "structured report expected:\n{stdout}");
    assert!(!bad.exists(), "the corrupt entry must leave the store");
    let quarantined: Vec<_> = std::fs::read_dir(state.join("quarantine"))
        .expect("quarantine dir")
        .flatten()
        .collect();
    assert_eq!(quarantined.len(), 1, "bytes preserved in quarantine");
    assert_eq!(
        std::fs::read_to_string(quarantined[0].path()).unwrap(),
        "{\"ce_result\": 1, \"key\": \"mismatched\"}"
    );

    let out = fsck(&state);
    assert!(out.status.success(), "after quarantine the dir audits clean");
    std::fs::remove_dir_all(&dir).ok();
}

/// The full deterministic fault grid through the real campaign binary:
/// every class × every op index (the crash column spawns worker
/// subprocesses that really abort), ≥100 cases, zero violations.
#[test]
fn cechaos_grid_campaign_passes() {
    let dir = temp_dir("grid");
    let out = Command::new(env!("CARGO_BIN_EXE_cechaos"))
        .args(["--grid-only", "--seed", "1", "--state"])
        .arg(&dir)
        .output()
        .expect("cechaos runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "grid campaign failed:\n{stdout}");
    assert!(stdout.contains("campaign PASSED"), "{stdout}");
    assert!(stdout.contains("0 violation(s)"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
