//! Exit-code contracts of the CI gate tools (`bench_compare`,
//! `metrics_check`): 0 pass, 1 gate failure, 2 missing/malformed input —
//! so a workflow can distinguish "the gate tripped" from "the gate never
//! ran".

use std::path::{Path, PathBuf};
use std::process::Command;

fn bench_compare() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bench_compare"))
}

fn metrics_check() -> Command {
    Command::new(env!("CARGO_BIN_EXE_metrics_check"))
}

fn schema_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/metrics.schema.json")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ce-cli-tools-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn snapshot(dir: &Path, name: &str, mcps: f64) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, format!("{{\"sim_mcycles_per_s\": {mcps}}}")).expect("write");
    path
}

#[test]
fn bench_compare_distinguishes_gate_trips_from_broken_inputs() {
    let dir = temp_dir("compare");
    let fast = snapshot(&dir, "fast.json", 10.0);
    let slow = snapshot(&dir, "slow.json", 1.0);

    // Healthy candidate: pass.
    let out = bench_compare().args([&fast, &fast]).output().expect("runs");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    // Regressed candidate: the gate trips with exit 1.
    let out = bench_compare().args([&slow, &fast]).output().expect("runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("regressed"));

    // Missing file: exit 2, with the path in the message.
    let out = bench_compare()
        .arg(dir.join("absent.json"))
        .arg(&fast)
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("absent.json"));

    // Malformed JSON: exit 2.
    let garbled = dir.join("garbled.json");
    std::fs::write(&garbled, "{not json").expect("write");
    let out = bench_compare().args([&garbled, &fast]).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("parsing"));

    // Usage errors: exit 2.
    let out = bench_compare().output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let out = bench_compare().args(["a", "b", "--min-ratio", "x"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_check_distinguishes_validation_failures_from_broken_inputs() {
    let dir = temp_dir("metrics");

    // A syntactically valid document that fails validation: exit 1.
    let wrong = dir.join("wrong.json");
    std::fs::write(&wrong, r#"{"schema": "something-else"}"#).expect("write");
    let out = metrics_check().arg(&wrong).arg(schema_path()).output().expect("runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("problem(s)"));

    // Missing document: exit 2.
    let out = metrics_check()
        .arg(dir.join("absent.json"))
        .arg(schema_path())
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("absent.json"));

    // Malformed document: exit 2.
    let garbled = dir.join("garbled.json");
    std::fs::write(&garbled, "][").expect("write");
    let out = metrics_check().arg(&garbled).arg(schema_path()).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("parsing"));

    // No arguments at all: usage, exit 2.
    let out = metrics_check().output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    std::fs::remove_dir_all(&dir).ok();
}
