//! End-to-end contracts of `ce-explore`: the CSVs are identical whatever
//! `CE_THREADS` says, a SIGKILLed run resumes to byte-identical output,
//! the tiny grid's structured skips are exactly the two probes, the
//! frontier column is genuinely non-dominated, and the winner table
//! carries every §5.6 organization plus a best-BIPS row per technology.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ce-explore-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A tiny-grid sampled explorer invocation at a small cap.
fn explore_cmd(out: &Path, threads: &str) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ce-explore"));
    cmd.env("CE_MAX_INSTS", "20000")
        .env("CE_THREADS", threads)
        .arg("--grid")
        .arg("tiny")
        .arg("--out")
        .arg(out)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    cmd
}

fn tab02_of(out: &Path) -> PathBuf {
    out.with_file_name("tab02_explore.csv")
}

/// Splits a CSV body into its data rows (header dropped).
fn rows(csv: &str) -> Vec<Vec<String>> {
    csv.trim_end()
        .lines()
        .skip(1)
        .map(|l| l.split(',').map(str::to_string).collect())
        .collect()
}

/// One run, checked in depth: row accounting, skip taxonomy, frontier
/// soundness, §5.6 coverage — then a second run under a different
/// `CE_THREADS` must reproduce both CSVs byte for byte.
#[test]
fn csvs_are_sound_and_independent_of_worker_count() {
    let dir = temp_dir("threads");
    let out1 = dir.join("one").join("pareto.csv");
    let out4 = dir.join("four").join("pareto.csv");
    std::fs::create_dir_all(out1.parent().unwrap()).unwrap();
    std::fs::create_dir_all(out4.parent().unwrap()).unwrap();

    assert!(explore_cmd(&out1, "1").status().expect("runs").success());
    let pareto = std::fs::read_to_string(&out1).expect("pareto.csv");
    let tab02 = std::fs::read_to_string(tab02_of(&out1)).expect("tab02_explore.csv");

    // 8 tiny-grid points × 3 technologies, all accounted for.
    let data = rows(&pareto);
    assert_eq!(data.len(), 24);
    let header: Vec<&str> = pareto.lines().next().unwrap().split(',').collect();
    let col = |name: &str| {
        header.iter().position(|h| *h == name).unwrap_or_else(|| panic!("column {name}"))
    };
    let (status_c, tech_c, clock_c, ipc_c, frontier_c, label_c) = (
        col("status"),
        col("tech_um"),
        col("clock_ps"),
        col("ipc_hmean"),
        col("frontier"),
        col("label"),
    );
    for row in &data {
        assert_eq!(row.len(), header.len(), "ragged row: {row:?}");
    }

    // Exactly the two probes skip — one refused by the delay models in
    // each technology, one refused by the simulator — and each skip
    // carries a reason.
    let by_status =
        |s: &str| data.iter().filter(|r| r[status_c] == s).collect::<Vec<_>>();
    assert_eq!(by_status("ok").len(), 18);
    let skip_delay = by_status("skip-delay");
    let skip_sim = by_status("skip-sim");
    assert_eq!(skip_delay.len(), 3);
    assert_eq!(skip_sim.len(), 3);
    for skip in skip_delay.iter().chain(&skip_sim) {
        assert!(skip[label_c].starts_with("w8."), "probe label: {skip:?}");
        assert!(!skip[col("reason")].is_empty(), "skips must carry a reason: {skip:?}");
    }

    // Frontier soundness from the published numbers alone: a frontier
    // row must not be strictly dominated (strict in both fields, so the
    // check stays sound under the CSV's rounding) by any row of its
    // technology.
    let scored: Vec<(&str, f64, f64, bool)> = data
        .iter()
        .filter(|r| r[status_c] == "ok")
        .map(|r| {
            (
                r[tech_c].as_str(),
                r[clock_c].parse::<f64>().expect("clock_ps"),
                r[ipc_c].parse::<f64>().expect("ipc_hmean"),
                r[frontier_c] == "1",
            )
        })
        .collect();
    for tech in ["0.8", "0.35", "0.18"] {
        let of_tech: Vec<_> = scored.iter().filter(|s| s.0 == tech).collect();
        assert_eq!(of_tech.len(), 6, "six scored organizations in {tech}um");
        assert!(of_tech.iter().any(|s| s.3), "empty frontier in {tech}um");
        for s in of_tech.iter().filter(|s| s.3) {
            assert!(
                !of_tech.iter().any(|o| o.1 < s.1 && o.2 > s.2),
                "frontier row strictly dominated in {tech}um"
            );
        }
    }

    // The winner table extends the paper's §5.6 organizations: every one
    // of them appears per technology, plus one explored-best row.
    let tab_rows = rows(&tab02);
    assert_eq!(tab_rows.len(), 3 * 6, "5 paper organizations + 1 winner, per technology");
    for name in [
        "1-cluster.1window",
        "2-cluster.FIFOs.dispatch_steer",
        "2-cluster.windows.dispatch_steer",
        "2-cluster.1window.exec_steer",
        "2-cluster.windows.random_steer",
    ] {
        assert_eq!(
            tab_rows.iter().filter(|r| r[2] == name).count(),
            3,
            "{name} once per technology"
        );
    }
    assert_eq!(tab_rows.iter().filter(|r| r[1] == "explored-best").count(), 3);

    // Same grid under a different worker count: byte-identical CSVs.
    assert!(explore_cmd(&out4, "4").status().expect("runs").success());
    assert_eq!(std::fs::read_to_string(&out4).unwrap(), pareto, "pareto.csv varies with CE_THREADS");
    assert_eq!(
        std::fs::read_to_string(tab02_of(&out4)).unwrap(),
        tab02,
        "tab02_explore.csv varies with CE_THREADS"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// The fault-tolerance guarantee, end to end: SIGKILL `ce-explore`
/// mid-sweep, re-run with `--resume`, and both CSVs are byte-identical
/// to an uninterrupted run's.
#[test]
fn sigkill_then_resume_reproduces_both_csvs_byte_for_byte() {
    // Separate subdirectories: the companion tab02_explore.csv lands
    // next to each run's --out, so the runs must not share a directory.
    let dir = temp_dir("kill");
    let reference = dir.join("reference").join("pareto.csv");
    let killed = dir.join("killed").join("pareto.csv");
    std::fs::create_dir_all(reference.parent().unwrap()).unwrap();
    std::fs::create_dir_all(killed.parent().unwrap()).unwrap();

    // Uninterrupted reference run.
    assert!(explore_cmd(&reference, "1").status().expect("runs").success());
    let ref_pareto = std::fs::read(&reference).expect("reference pareto");
    let ref_tab02 = std::fs::read(tab02_of(&reference)).expect("reference tab02");

    // Interrupted run: SIGKILL once the journal holds a record but
    // before the CSVs land.
    let ckpt = dir.join("killed").join("pareto.ckpt.jsonl");
    let mut child = explore_cmd(&killed, "1").spawn().expect("spawns");
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        let cells_done = std::fs::read_to_string(&ckpt)
            .map(|s| s.lines().count().saturating_sub(1))
            .unwrap_or(0);
        if cells_done >= 1 {
            break;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("explorer finished before it could be killed ({status}); cap too small");
        }
        assert!(std::time::Instant::now() < deadline, "no checkpoint record after 120s");
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");
    assert!(!killed.exists(), "pareto.csv must not exist after a killed run");
    assert!(!tab02_of(&killed).exists(), "tab02_explore.csv must not exist after a killed run");
    let journal_before = std::fs::read_to_string(&ckpt).expect("journal survives the kill");

    // Resume and compare.
    let status = explore_cmd(&killed, "1").arg("--resume").status().expect("resumes");
    assert!(status.success());
    assert_eq!(std::fs::read(&killed).unwrap(), ref_pareto, "pareto.csv differs after resume");
    assert_eq!(
        std::fs::read(tab02_of(&killed)).unwrap(),
        ref_tab02,
        "tab02_explore.csv differs after resume"
    );
    assert!(!ckpt.exists(), "journal should be cleaned up after the clean resume");
    assert!(
        journal_before.lines().count() >= 2,
        "kill happened before any record was journaled"
    );

    std::fs::remove_dir_all(&dir).ok();
}
