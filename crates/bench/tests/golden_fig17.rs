//! Golden snapshot of the Figure 17 sweep.
//!
//! Pins the complete statistics fingerprint (cycles, committed → IPC,
//! inter-cluster bypasses, stall breakdowns, issue histogram) of every
//! Figure 17 organization on every benchmark kernel at a 50 000-instruction
//! cap. The golden file was captured from the simulator **before** the
//! hot-path rework, so this test is the bit-exact equivalence proof the
//! optimization work is held to: any change to scheduling order, steering,
//! or bypass accounting fails here.
//!
//! To re-bless after an *intentional* behaviour change:
//!
//! ```text
//! CE_BLESS=1 cargo test -p ce-bench --test golden_fig17
//! ```

use std::fmt::Write as _;

use ce_sim::machine::figure17_machines;
use ce_sim::Simulator;
use ce_workloads::{trace_cached, Benchmark};

const CAP: u64 = 50_000;
const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_fig17.tsv");

fn render_current() -> String {
    let mut out = String::new();
    out.push_str("# org\tbenchmark\tstats fingerprint (cap 50000)\n");
    for (org, cfg) in figure17_machines() {
        for bench in Benchmark::all() {
            let trace = trace_cached(bench, CAP).expect("bundled kernel must trace");
            let stats = Simulator::new(cfg).run(&trace);
            writeln!(out, "{org}\t{}\t{}", bench.name(), stats.fingerprint()).unwrap();
        }
    }
    out
}

#[test]
fn fig17_stats_match_golden_capture() {
    let current = render_current();
    if std::env::var("CE_BLESS").is_ok() {
        std::fs::write(GOLDEN, &current).expect("write golden file");
        eprintln!("blessed {GOLDEN}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing — run once with CE_BLESS=1 to capture");
    let mut mismatches = Vec::new();
    for (want, got) in golden.lines().zip(current.lines()) {
        if want != got {
            mismatches.push(format!("want: {want}\n got: {got}"));
        }
    }
    assert_eq!(
        golden.lines().count(),
        current.lines().count(),
        "golden line count differs — organization/benchmark set changed?"
    );
    assert!(
        mismatches.is_empty(),
        "{} of 35 fig17 cells diverged from the pre-optimization capture:\n{}",
        mismatches.len(),
        mismatches.join("\n---\n")
    );
}
