//! End-to-end tests for the `cesimd` experiment service: byte-identity
//! with the CLI binaries, content-addressed cache service on resubmit,
//! incremental re-sweep after a config change, `kill -9` crash recovery
//! with no duplicate cell execution, and `error[overloaded]`
//! backpressure.
//!
//! All daemon interaction goes through the real binaries
//! (`CARGO_BIN_EXE_*`), so these tests exercise the protocol, the WAL,
//! and the exit-code discipline exactly as an operator would.
#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ce_bench::json::Json;

/// Small instruction cap so cells finish in milliseconds but a
/// multi-cell sweep still takes long enough to kill mid-flight.
const INSTS: &str = "20000";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ce-service-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The daemon, pinned to one worker thread so sweeps progress cell by
/// cell (deterministic kill windows).
fn daemon(state: &Path, socket: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_cesimd"));
    cmd.env("CE_MAX_INSTS", INSTS)
        .env("CE_THREADS", "1")
        .arg("--state")
        .arg(state)
        .arg("--socket")
        .arg(socket)
        .arg("--quiet")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    cmd
}

fn ctl(socket: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_cesimctl"));
    cmd.env("CE_MAX_INSTS", INSTS).arg("--socket").arg(socket);
    cmd
}

/// Waits until the daemon answers `ping` (socket bound and accepting).
fn wait_ready(socket: &Path, child: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let ok = ctl(socket)
            .arg("ping")
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .map(|s| s.success())
            .unwrap_or(false);
        if ok {
            return;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("cesimd exited during startup: {status}");
        }
        assert!(Instant::now() < deadline, "cesimd never became ready");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Asks the daemon to drain and waits for a clean exit.
fn shutdown(socket: &Path, child: &mut Child) {
    let _ = ctl(socket)
        .arg("shutdown")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status();
    let status = child.wait().expect("cesimd reaped");
    assert!(status.success(), "cesimd shutdown was not clean: {status}");
}

/// The set of cells a telemetry journal proves were *settled by
/// simulation* in that execution (checkpoint-write events), plus its
/// cache-hit count. Torn tails are tolerated like every journal reader.
fn exec_profile(journal: &Path) -> (std::collections::BTreeSet<u64>, usize) {
    let text = std::fs::read_to_string(journal)
        .unwrap_or_else(|e| panic!("reading {}: {e}", journal.display()));
    let mut written = std::collections::BTreeSet::new();
    let mut hits = 0usize;
    for line in text.lines().skip(1) {
        let Ok(doc) = Json::parse(line) else { continue };
        match doc.at("ev").and_then(Json::as_str) {
            Some("checkpoint-write") => {
                written.insert(doc.at("cell").and_then(Json::as_u64).expect("cell"));
            }
            Some("cache-hit") => hits += 1,
            _ => {}
        }
    }
    (written, hits)
}

fn read_csv(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// The headline acceptance tests, serialized against one daemon: the
/// service's fig13 CSV is byte-identical to the standalone binary's, an
/// identical resubmission is fully cache-served (no simulation at all),
/// and after changing one machine in the grid only that machine's cells
/// re-run.
#[test]
fn service_csv_matches_cli_and_resubmit_is_cache_served() {
    let dir = temp_dir("cache");
    let state = dir.join("state");
    let socket = dir.join("d.sock");

    // Reference: the standalone binary, same instruction cap.
    let ref_csv = dir.join("reference.csv");
    let status = Command::new(env!("CARGO_BIN_EXE_fig13_ipc"))
        .env("CE_MAX_INSTS", INSTS)
        .env("CE_THREADS", "1")
        .arg("--out")
        .arg(&ref_csv)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("fig13_ipc runs");
    assert!(status.success());
    let reference = read_csv(&ref_csv);

    let mut d = daemon(&state, &socket).spawn().expect("cesimd spawns");
    wait_ready(&socket, &mut d);

    // First submission: all 14 cells simulate; bytes match the CLI.
    let art1 = dir.join("art1");
    let out = ctl(&socket)
        .args(["submit", "fig13", "--artifacts"])
        .arg(&art1)
        .output()
        .expect("cesimctl runs");
    assert!(out.status.success(), "submit failed: {}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        read_csv(&art1.join("fig13_ipc.csv")),
        reference,
        "service CSV differs from the standalone binary's"
    );
    let (written, hits) = exec_profile(&state.join("telemetry/job-1.exec-0.jsonl"));
    assert_eq!(written.len(), 14, "every cell simulates on a cold store");
    assert_eq!(hits, 0);

    // Identical resubmission: 100% cache-served, still byte-identical.
    let art2 = dir.join("art2");
    let out = ctl(&socket)
        .args(["submit", "fig13", "--artifacts"])
        .arg(&art2)
        .output()
        .expect("cesimctl runs");
    assert!(out.status.success());
    assert_eq!(read_csv(&art2.join("fig13_ipc.csv")), reference);
    let journal2 = state.join("telemetry/job-2.exec-0.jsonl");
    let (written, hits) = exec_profile(&journal2);
    assert!(written.is_empty(), "resubmission must not simulate: {written:?}");
    assert_eq!(hits, 14, "all 14 cells served from the result store");

    // sweephealth surfaces the cache economics (the CI gate greps this).
    let out = Command::new(env!("CARGO_BIN_EXE_sweephealth"))
        .arg(&journal2)
        .output()
        .expect("sweephealth runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("cache_hits=14 cache_misses=0"),
        "sweephealth must report the cache split:\n{text}"
    );

    // Incremental re-sweep: swap one machine in the grid. fig13 covered
    // window+fifos with attribution on; clustered-fifos is new, so of
    // these two cells exactly one simulates.
    let out = ctl(&socket)
        .args([
            "submit-cells",
            "compress:window,compress:clustered-fifos",
            "--attribution",
        ])
        .output()
        .expect("cesimctl runs");
    assert!(out.status.success(), "submit-cells failed: {}", String::from_utf8_lossy(&out.stderr));
    let (written, hits) = exec_profile(&state.join("telemetry/job-3.exec-0.jsonl"));
    assert_eq!(hits, 1, "the unchanged cell is cache-served");
    assert_eq!(written.len(), 1, "only the changed cell re-runs");

    shutdown(&socket, &mut d);
    std::fs::remove_dir_all(&dir).ok();
}

/// The crash-recovery contract: `kill -9` the daemon mid-job, restart it
/// on the same state directory, and the job completes headless with a
/// CSV byte-identical to the standalone binary's — and the two
/// executions' telemetry journals prove no cell was simulated twice.
#[test]
fn kill_nine_mid_job_resumes_without_duplicate_execution() {
    let dir = temp_dir("kill9");
    let state = dir.join("state");
    let socket = dir.join("d.sock");

    // Reference: the standalone fig17 binary (35 cells, attribution on).
    let ref_csv = dir.join("reference.csv");
    let status = Command::new(env!("CARGO_BIN_EXE_fig17_organizations"))
        .env("CE_MAX_INSTS", INSTS)
        .env("CE_THREADS", "1")
        .arg("--out")
        .arg(&ref_csv)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("fig17 runs");
    assert!(status.success());
    let reference = read_csv(&ref_csv);

    let mut d = daemon(&state, &socket).spawn().expect("cesimd spawns");
    wait_ready(&socket, &mut d);

    // Submit without waiting: the client streams events until the daemon
    // dies under it.
    let mut client = ctl(&socket)
        .args(["submit", "fig17", "--quiet"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("cesimctl spawns");

    // Kill as soon as the checkpoint journal holds at least one settled
    // cell but well before all 35 are done (one worker thread).
    let ckpt = state.join("ckpt/job-1.ckpt.jsonl");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let cells_done = std::fs::read_to_string(&ckpt)
            .map(|s| s.lines().count().saturating_sub(1))
            .unwrap_or(0);
        if cells_done >= 1 {
            break;
        }
        if let Some(status) = d.try_wait().expect("try_wait") {
            panic!("cesimd exited before it could be killed: {status}");
        }
        assert!(Instant::now() < deadline, "no checkpoint record after 120s");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        !state.join("artifacts/job-1/manifest.json").exists(),
        "job finished before the kill; the window is too small"
    );
    d.kill().expect("SIGKILL"); // Child::kill is SIGKILL on unix
    d.wait().expect("reap daemon");
    let _ = client.wait();

    // Restart on the same state: the WAL re-enqueues job 1 headless.
    let mut d = daemon(&state, &socket).spawn().expect("cesimd restarts");
    wait_ready(&socket, &mut d);
    let manifest = state.join("artifacts/job-1/manifest.json");
    let deadline = Instant::now() + Duration::from_secs(120);
    while !manifest.exists() {
        if let Some(status) = d.try_wait().expect("try_wait") {
            panic!("restarted cesimd exited early: {status}");
        }
        assert!(Instant::now() < deadline, "resumed job never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        read_csv(&state.join("artifacts/job-1/fig17_organizations.csv")),
        reference,
        "resumed job's CSV differs from an uninterrupted run"
    );

    // No duplicate execution: the cells each execution settled by
    // simulation are disjoint, and together they cover the whole grid
    // (nothing was lost, nothing ran twice).
    let (first, _) = exec_profile(&state.join("telemetry/job-1.exec-0.jsonl"));
    let (second, hits) = exec_profile(&state.join("telemetry/job-1.exec-1.jsonl"));
    assert!(!first.is_empty(), "the kill landed before any cell settled");
    assert!(
        first.is_disjoint(&second),
        "cells simulated twice across the restart: {:?}",
        first.intersection(&second).collect::<Vec<_>>()
    );
    assert_eq!(
        first.union(&second).count(),
        35,
        "executions must jointly cover all 35 cells (first {first:?}, second {second:?})"
    );
    // Every cell the first execution settled also landed in the result
    // store (atomic insert precedes the journal record), so the replay
    // sees them as cache hits on top of the journal recovery.
    assert!(
        hits >= first.len(),
        "replay saw {hits} store hits but execution 0 settled {} cells",
        first.len()
    );

    shutdown(&socket, &mut d);
    std::fs::remove_dir_all(&dir).ok();
}

/// Bounded admission: with a zero-slot queue every submission gets a
/// structured `error[overloaded]` and cesimctl exits 1 (experiment
/// failure, not protocol error).
#[test]
fn overloaded_queue_rejects_with_structured_backpressure() {
    let dir = temp_dir("overload");
    let state = dir.join("state");
    let socket = dir.join("d.sock");
    let mut d = daemon(&state, &socket)
        .args(["--max-pending", "0"])
        .spawn()
        .expect("cesimd spawns");
    wait_ready(&socket, &mut d);

    let out = ctl(&socket).args(["submit", "fig13"]).output().expect("cesimctl runs");
    assert_eq!(out.status.code(), Some(1), "backpressure is exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error[overloaded]"), "missing structured error:\n{stderr}");

    shutdown(&socket, &mut d);
    std::fs::remove_dir_all(&dir).ok();
}
