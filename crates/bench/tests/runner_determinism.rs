//! The parallel runner must be a drop-in replacement for the serial
//! loops it superseded: same cells, same order, byte-identical
//! statistics — regardless of worker count or scheduling.

use ce_bench::runner;
use ce_sim::{machine, Simulator};
use ce_workloads::{trace_cached, Benchmark};

const CAP: u64 = 50_000;

/// The full Figure 17 grid through the pool equals a plain serial loop,
/// cell for cell (fingerprints serialize every counter, so equality here
/// is byte-for-byte on the stats).
#[test]
fn parallel_grid_matches_serial_loop_exactly() {
    let machines = machine::figure17_machines();
    let jobs = runner::grid(&machines);
    let parallel = runner::run_timed(&jobs, CAP);
    assert_eq!(parallel.len(), jobs.len());

    let mut serial = Vec::with_capacity(jobs.len());
    for bench in Benchmark::all() {
        let trace = trace_cached(bench, CAP).expect("kernel traces");
        for (_, cfg) in &machines {
            serial.push(Simulator::new(*cfg).run(&trace));
        }
    }

    for (i, (p, s)) in parallel.iter().zip(&serial).enumerate() {
        assert_eq!(
            p.stats.fingerprint(),
            s.fingerprint(),
            "cell {i} ({:?} on {}) differs between parallel and serial runs",
            jobs[i].0,
            machines[i % machines.len()].0,
        );
    }
}

/// Two pool runs of the same jobs agree with each other (no run-to-run
/// scheduling sensitivity).
#[test]
fn repeated_runs_are_identical() {
    let jobs = vec![
        (Benchmark::Compress, machine::baseline_8way()),
        (Benchmark::Compress, machine::clustered_fifos_8way()),
        (Benchmark::Li, machine::clustered_windows_dispatch_8way()),
        (Benchmark::Li, machine::baseline_8way()),
    ];
    let a = runner::run_timed(&jobs, 20_000);
    let b = runner::run_timed(&jobs, 20_000);
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x.stats, y.stats, "cell {i} not reproducible");
    }
}
