//! End-to-end contracts of the engine-telemetry layer: telemetry must
//! never change committed results (CSVs byte-identical on vs off), every
//! sweep writes a schema-valid content-addressed manifest, the Chrome
//! trace is loadable JSON, and `sweephealth`/`manifest_check` honor the
//! repo's exit-code contract (0 pass, 1 gate failure, 2 broken input).

use std::path::{Path, PathBuf};
use std::process::Command;

use ce_bench::json::Json;
use ce_bench::manifest;
use ce_bench::metrics_check::check_required;
use ce_bench::runner::{self, RunOptions};
use ce_sim::machine;
use ce_workloads::Benchmark;

const INSTS: &str = "2000";

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ce-telemetry-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn manifest_schema_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/manifest.schema.json")
}

fn manifest_schema() -> Json {
    Json::parse(&std::fs::read_to_string(manifest_schema_path()).expect("schema file"))
        .expect("schema parses")
}

fn fig17(dir: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fig17_organizations"));
    cmd.env("CE_MAX_INSTS", INSTS).current_dir(dir);
    cmd
}

fn sweephealth() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sweephealth"))
}

fn manifest_check() -> Command {
    Command::new(env!("CARGO_BIN_EXE_manifest_check"))
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// The headline invariant: a sweep's CSV is byte-identical with telemetry
/// fully on (journal + Chrome trace + manifest) and fully off — and the
/// journal, trace, and manifest it produces all validate.
#[test]
fn fig17_csv_byte_identical_with_telemetry_on_and_off() {
    let dir = temp_dir("fig17");
    run_ok(fig17(&dir).args(["--quiet", "--out", "plain.csv"]));
    run_ok(fig17(&dir).args([
        "--quiet",
        "--out",
        "instrumented.csv",
        "--telemetry",
        "sweep.jsonl",
        "--trace-out",
        "sweep.trace.json",
    ]));
    let plain = std::fs::read(dir.join("plain.csv")).expect("plain CSV");
    let instrumented = std::fs::read(dir.join("instrumented.csv")).expect("instrumented CSV");
    assert_eq!(plain, instrumented, "telemetry must never change results");

    // The journal aggregates to a healthy report: every cell completed.
    let health = run_ok(sweephealth().arg(dir.join("sweep.jsonl")));
    assert!(health.contains("sweephealth: ok journals=1 cells=35 failed=0"), "{health}");

    // The Chrome trace is loadable trace_event JSON with paired spans.
    let trace = Json::parse(
        &std::fs::read_to_string(dir.join("sweep.trace.json")).expect("trace file"),
    )
    .expect("trace parses");
    assert_eq!(trace.at("displayTimeUnit").and_then(Json::as_str), Some("ms"));
    let events = trace.at("traceEvents").and_then(Json::as_arr).expect("traceEvents");
    assert!(events.len() >= 35, "one span per cell at least, got {}", events.len());
    assert!(events.iter().all(|e| e.at("ph").and_then(Json::as_str).is_some()));

    // The default-located manifest passes the committed schema and its
    // artifact digest matches the CSV on disk.
    let manifest_path = dir.join("instrumented.manifest.json");
    let doc = Json::parse(&std::fs::read_to_string(&manifest_path).expect("manifest"))
        .expect("manifest parses");
    let problems = check_required(
        &doc,
        &manifest_schema(),
        "ce-bench.manifest.schema.v1",
        manifest::MANIFEST_SCHEMA,
    );
    assert!(problems.is_empty(), "{problems:#?}");
    run_ok(manifest_check().args([
        manifest_path.to_str().unwrap(),
        manifest_schema_path(),
        "--verify-artifacts",
    ]));

    // Cross-process cache-key stability: the key the binary recorded is
    // the key this process computes from the same inputs.
    let jobs = runner::grid(&machine::figure17_machines());
    let expected = manifest::cache_key(
        &jobs,
        2_000,
        RunOptions { attribution: true, ..RunOptions::default() },
    )
    .expect("cache key");
    assert_eq!(doc.at("cache_key").and_then(Json::as_str), Some(expected.as_str()));
    assert_eq!(doc.at("cells").and_then(Json::as_u64), Some(35));

    std::fs::remove_dir_all(&dir).ok();
}

/// The explorer honors the same invariant for both of its CSVs, and its
/// manifest vouches for the pair.
#[test]
fn explore_csvs_byte_identical_and_manifest_covers_both() {
    // tab02_explore.csv has a fixed name next to the pareto CSV, so the
    // plain and instrumented runs get separate directories.
    let dir = temp_dir("explore");
    let (plain_dir, instr_dir) = (dir.join("plain"), dir.join("instr"));
    std::fs::create_dir_all(&plain_dir).expect("plain dir");
    std::fs::create_dir_all(&instr_dir).expect("instr dir");
    let explore = |cwd: &Path, args: &[&str]| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_ce-explore"));
        cmd.env("CE_MAX_INSTS", INSTS)
            .current_dir(cwd)
            .args(["--grid", "tiny", "--quiet", "--out", "pareto.csv"]);
        cmd.args(args);
        cmd
    };
    run_ok(&mut explore(&plain_dir, &[]));
    run_ok(&mut explore(&instr_dir, &["--telemetry", "explore.jsonl"]));
    for name in ["pareto.csv", "tab02_explore.csv"] {
        assert_eq!(
            std::fs::read(plain_dir.join(name)).expect("plain CSV"),
            std::fs::read(instr_dir.join(name)).expect("instr CSV"),
            "{name} must be byte-identical with telemetry on and off"
        );
    }

    let manifest_path = instr_dir.join("pareto.manifest.json");
    let doc = Json::parse(&std::fs::read_to_string(&manifest_path).expect("manifest"))
        .expect("manifest parses");
    let problems = check_required(
        &doc,
        &manifest_schema(),
        "ce-bench.manifest.schema.v1",
        manifest::MANIFEST_SCHEMA,
    );
    assert!(problems.is_empty(), "{problems:#?}");
    let artifacts = doc.at("artifacts").and_then(Json::as_arr).expect("artifacts");
    assert_eq!(artifacts.len(), 2, "pareto + tab02");
    run_ok(manifest_check().args([
        manifest_path.to_str().unwrap(),
        manifest_schema_path(),
        "--verify-artifacts",
    ]));
    run_ok(sweephealth().arg(instr_dir.join("explore.jsonl")));

    std::fs::remove_dir_all(&dir).ok();
}

/// A sweep killed mid-run leaves a torn journal; the resumed run's
/// journal must aggregate to a healthy report with every cell accounted
/// for (resumed cells carrying their journaled wall times).
#[test]
fn killed_and_resumed_sweep_reports_healthy() {
    let dir = temp_dir("kill");
    let mut child = fig17(&dir)
        .args(["--quiet", "--out", "out.csv", "--telemetry", "first.jsonl"])
        .env("CE_THREADS", "1")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn");
    std::thread::sleep(std::time::Duration::from_millis(300));
    child.kill().ok();
    child.wait().expect("reap");

    run_ok(fig17(&dir).args([
        "--quiet",
        "--resume",
        "--out",
        "out.csv",
        "--telemetry",
        "resumed.jsonl",
    ]));
    assert!(dir.join("out.csv").exists());
    let health = run_ok(sweephealth().arg(dir.join("resumed.jsonl")));
    assert!(health.contains("sweephealth: ok journals=1 cells=35 failed=0"), "{health}");
    // A manifest is written on the resumed run too, and still validates.
    run_ok(manifest_check().args([
        dir.join("out.manifest.json").to_str().unwrap(),
        manifest_schema_path(),
        "--verify-artifacts",
    ]));

    std::fs::remove_dir_all(&dir).ok();
}

/// `sweephealth` exit codes: 0 healthy, 1 unhealthy (parseable journal,
/// bad sweep), 2 torn-beyond-repair input — with torn *final* lines
/// tolerated exactly like the checkpoint loader.
#[test]
fn sweephealth_exit_codes_and_torn_line_tolerance() {
    let dir = temp_dir("health");
    let header = r#"{"ce_telemetry": 1, "name": "t", "cells": 1, "max_insts": 100}"#;
    let ok_cell = r#"{"t_us": 10, "ev": "attempt-end", "cell": 0, "worker": 0, "attempt": 1, "outcome": "ok", "wall_us": 10, "cycles": 50, "last": true}"#;
    let end = r#"{"t_us": 30, "ev": "sweep-end", "ok": 1, "failed": 0, "wall_us": 30}"#;

    // Healthy: complete journal, every cell ok.
    let healthy = dir.join("healthy.jsonl");
    std::fs::write(&healthy, format!("{header}\n{ok_cell}\n{end}\n")).expect("write");
    let out = sweephealth().arg(&healthy).output().expect("runs");
    assert_eq!(out.status.code(), Some(0));

    // Torn final line (kill -9 signature): parses, but no sweep-end →
    // unhealthy, exit 1, machine-readable error line.
    let torn = dir.join("torn.jsonl");
    std::fs::write(&torn, format!("{header}\n{ok_cell}\n{{\"t_us\": 29, \"ev\": \"sw"))
        .expect("write");
    let out = sweephealth().arg(&torn).output().expect("runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("error[unhealthy]"));

    // Corruption anywhere else is untrustworthy: exit 2.
    let corrupt = dir.join("corrupt.jsonl");
    std::fs::write(&corrupt, format!("{header}\n][ garbage\n{end}\n")).expect("write");
    let out = sweephealth().arg(&corrupt).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error[journal]"));

    // Missing file and usage errors: exit 2.
    let out = sweephealth().arg(dir.join("absent.jsonl")).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let out = sweephealth().output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    std::fs::remove_dir_all(&dir).ok();
}

/// `manifest_check` exit codes, including artifact-content verification:
/// a CSV edited after its manifest was written must fail the gate.
#[test]
fn manifest_check_catches_tampered_artifacts() {
    let dir = temp_dir("manifest");
    let out = dir.join("mini.csv");
    std::fs::write(&out, "a,b\n1,2\n").expect("csv");
    let jobs: Vec<runner::Job> = vec![(Benchmark::Compress, machine::baseline_8way())];
    let summary = runner::run_sweep(&jobs, 2_000, RunOptions::default());
    let manifest_path = dir.join("mini.manifest.json");
    manifest::write_manifest(
        &manifest_path,
        "mini",
        &jobs,
        2_000,
        RunOptions::default(),
        &summary,
        &[&out],
    )
    .expect("manifest");

    // Valid, artifacts intact: exit 0.
    run_ok(manifest_check().args([
        manifest_path.to_str().unwrap(),
        manifest_schema_path(),
        "--verify-artifacts",
    ]));

    // Tamper with the CSV: shape still passes, content verification trips.
    std::fs::write(&out, "a,b\n1,3\n").expect("tamper");
    let check = manifest_check()
        .args([manifest_path.to_str().unwrap(), manifest_schema_path(), "--verify-artifacts"])
        .output()
        .expect("runs");
    assert_eq!(check.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&check.stderr).contains("hashes to"));

    // A wrong document fails validation with exit 1; broken input exits 2.
    let wrong = dir.join("wrong.json");
    std::fs::write(&wrong, r#"{"schema": "something-else"}"#).expect("write");
    let out = manifest_check().args([wrong.to_str().unwrap(), manifest_schema_path()]).output().expect("runs");
    assert_eq!(out.status.code(), Some(1));
    let out = manifest_check()
        .args([dir.join("absent.json").to_str().unwrap(), manifest_schema_path()])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let out = manifest_check().output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    std::fs::remove_dir_all(&dir).ok();
}
