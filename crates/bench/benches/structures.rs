//! Criterion micro-benchmarks over the core structures: steering
//! throughput, FIFO pool operations, branch prediction, and cache access.

use ce_core::fifos::{FifoPool, PoolConfig};
use ce_core::steering::{DependenceSteerer, SteerOutcome};
use ce_core::InstId;
use ce_isa::{Instruction, Opcode, Reg};
use ce_sim::bpred::Gshare;
use ce_sim::config::{BpredConfig, DcacheConfig};
use ce_sim::dcache::Dcache;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_steering(c: &mut Criterion) {
    // A mix of chained and independent instructions, steered and drained.
    let insts: Vec<Instruction> = (0..64u8)
        .map(|i| {
            let src = if i % 3 == 0 { 1 } else { 8 + (i.wrapping_sub(1) % 16) };
            Instruction::rrr(Opcode::Addu, Reg::new(8 + i % 16), Reg::new(src), Reg::new(2))
        })
        .collect();
    c.bench_function("steer_64_instructions", |b| {
        b.iter(|| {
            let mut pool = FifoPool::new(PoolConfig::paper_default());
            let mut steerer = DependenceSteerer::new();
            let mut placed = 0u32;
            for (i, inst) in insts.iter().enumerate() {
                match steerer.steer(InstId(i as u64), inst, &mut pool) {
                    SteerOutcome::Fifo(_) => placed += 1,
                    SteerOutcome::Stall => {
                        // Drain the heads and retry once.
                        let heads: Vec<_> = pool.heads().collect();
                        for (f, id) in heads {
                            pool.pop_head(f);
                            steerer.on_issue(id);
                        }
                    }
                }
            }
            black_box(placed)
        })
    });
}

fn bench_fifo_pool(c: &mut Criterion) {
    c.bench_function("fifo_pool_push_pop_cycle", |b| {
        let mut pool = FifoPool::new(PoolConfig::paper_clustered());
        b.iter(|| {
            let f = pool.acquire().expect("free fifo");
            pool.push(f, InstId(1));
            pool.push(f, InstId(2));
            black_box(pool.head(f));
            pool.pop_head(f);
            pool.pop_head(f);
        })
    });
}

fn bench_gshare(c: &mut Criterion) {
    c.bench_function("gshare_predict_update", |b| {
        let mut bp = Gshare::new(BpredConfig::default());
        let mut pc = 0x40_0000u32;
        b.iter(|| {
            pc = pc.wrapping_add(4);
            black_box(bp.predict_and_update(pc, pc & 8 == 0))
        })
    });
}

fn bench_dcache(c: &mut Criterion) {
    c.bench_function("dcache_access_stream", |b| {
        let mut cache = Dcache::new(DcacheConfig::default());
        let mut addr = 0x1000_0000u32;
        b.iter(|| {
            addr = addr.wrapping_add(32);
            black_box(cache.access(addr, false))
        })
    });
}

criterion_group!(benches, bench_steering, bench_fifo_pool, bench_gshare, bench_dcache);
criterion_main!(benches);
