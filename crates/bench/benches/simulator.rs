//! Criterion benchmarks of whole-pipeline simulation speed: cycles of the
//! Figure 13/15 machines over a fixed trace prefix.

use ce_sim::{machine, Simulator};
use ce_workloads::{trace_cached, Benchmark, Trace};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn prefix(trace: &Trace, n: usize) -> Trace {
    trace.iter().take(n).copied().collect()
}

fn bench_machines(c: &mut Criterion) {
    // The shared process-wide cache: other bench groups reusing the
    // compress kernel get the same `Arc<Trace>` without re-emulating.
    let full = trace_cached(Benchmark::Compress, 100_000).expect("kernel runs");
    let trace = prefix(&full, 20_000);
    let mut group = c.benchmark_group("simulate_20k_compress");
    group.sample_size(10);
    let machines = [
        ("window_8way", machine::baseline_8way()),
        ("fifos_8way", machine::dependence_8way()),
        ("clustered_fifos", machine::clustered_fifos_8way()),
        ("exec_steer", machine::clustered_window_exec_8way()),
    ];
    for (name, cfg) in machines {
        group.bench_function(name, |b| {
            b.iter(|| black_box(Simulator::new(cfg).run(&trace)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_machines);
criterion_main!(benches);
