//! Criterion micro-benchmarks over the circuit delay models: one group per
//! paper artifact, sweeping the same parameter the figure sweeps.

use ce_delay::bypass::{BypassDelay, BypassParams};
use ce_delay::rename::{RenameDelay, RenameParams};
use ce_delay::restable::{ResTableDelay, ResTableParams};
use ce_delay::select::{SelectDelay, SelectParams};
use ce_delay::wakeup::{WakeupDelay, WakeupParams};
use ce_delay::{FeatureSize, PipelineDelays, Technology};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_rename(c: &mut Criterion) {
    let tech = Technology::new(FeatureSize::U018);
    let mut group = c.benchmark_group("fig03_rename_delay");
    for iw in [2usize, 4, 8] {
        group.bench_function(format!("{iw}way"), |b| {
            b.iter(|| RenameDelay::compute(black_box(&tech), &RenameParams::new(black_box(iw))))
        });
    }
    group.finish();
}

fn bench_wakeup(c: &mut Criterion) {
    let tech = Technology::new(FeatureSize::U018);
    let mut group = c.benchmark_group("fig05_wakeup_delay");
    for window in [16usize, 32, 64] {
        group.bench_function(format!("8way_w{window}"), |b| {
            b.iter(|| {
                WakeupDelay::compute(black_box(&tech), &WakeupParams::new(8, black_box(window)))
            })
        });
    }
    group.finish();
}

fn bench_select(c: &mut Criterion) {
    let tech = Technology::new(FeatureSize::U018);
    let mut group = c.benchmark_group("fig08_select_delay");
    for window in [16usize, 64, 128] {
        group.bench_function(format!("w{window}"), |b| {
            b.iter(|| SelectDelay::compute(black_box(&tech), &SelectParams::new(black_box(window))))
        });
    }
    group.finish();
}

fn bench_bypass_and_restable(c: &mut Criterion) {
    let tech = Technology::new(FeatureSize::U018);
    c.bench_function("tab01_bypass_delay_8way", |b| {
        b.iter(|| BypassDelay::compute(black_box(&tech), &BypassParams::new(black_box(8))))
    });
    c.bench_function("tab04_restable_delay_8way", |b| {
        b.iter(|| ResTableDelay::compute(black_box(&tech), &ResTableParams::new(black_box(8))))
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("tab02_full_rollup", |b| {
        b.iter(|| {
            for tech in Technology::all() {
                black_box(PipelineDelays::compute(&tech, 8, 64));
            }
        })
    });
}

criterion_group!(
    benches,
    bench_rename,
    bench_wakeup,
    bench_select,
    bench_bypass_and_restable,
    bench_table2
);
criterion_main!(benches);
