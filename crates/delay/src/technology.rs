//! CMOS technology parameters for the three feature sizes studied in the
//! paper.

use std::fmt;

/// The three CMOS generations simulated in the paper (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FeatureSize {
    /// 0.8 µm (the oldest technology in the study; 5 V class).
    U080,
    /// 0.35 µm (3.3 V class).
    U035,
    /// 0.18 µm (the "future generation" the paper focuses on).
    U018,
}

impl FeatureSize {
    /// Drawn feature size in micrometres.
    pub fn micrometers(self) -> f64 {
        match self {
            FeatureSize::U080 => 0.8,
            FeatureSize::U035 => 0.35,
            FeatureSize::U018 => 0.18,
        }
    }

    /// λ, half the feature size, in micrometres — the layout length unit.
    pub fn lambda_um(self) -> f64 {
        self.micrometers() / 2.0
    }

    /// All three feature sizes, largest (oldest) first — the order the
    /// paper's figures use.
    pub fn all() -> [FeatureSize; 3] {
        [FeatureSize::U080, FeatureSize::U035, FeatureSize::U018]
    }
}

impl fmt::Display for FeatureSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}um", self.micrometers())
    }
}

/// Technology parameters used by all delay models.
///
/// The scaling model follows the paper's assumptions:
///
/// * **logic** delay scales with the per-technology gate-stage delay
///   [`tau_fo4_ps`](Self::tau_fo4_ps) (fitted per generation — real
///   generations do not scale perfectly linearly because supply voltage
///   changes too);
/// * **wire** delay per λ² is *constant* across generations ("wire delays
///   are constant according to the scaling model assumed", Section 4.4.3),
///   so structures dominated by wires stop improving as feature size
///   shrinks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    feature: FeatureSize,
    tau_fo4_ps: f64,
    r_per_lambda_ohm: f64,
    c_per_lambda_ff: f64,
}

impl Technology {
    /// Creates the calibrated technology model for a feature size.
    pub fn new(feature: FeatureSize) -> Technology {
        let tau_fo4_ps = match feature {
            FeatureSize::U080 => crate::calib::TAU_FO4_080_PS,
            FeatureSize::U035 => crate::calib::TAU_FO4_035_PS,
            FeatureSize::U018 => crate::calib::TAU_FO4_018_PS,
        };
        Technology {
            feature,
            tau_fo4_ps,
            r_per_lambda_ohm: crate::calib::R_PER_LAMBDA_OHM,
            c_per_lambda_ff: crate::calib::C_PER_LAMBDA_FF,
        }
    }

    /// The feature size this model describes.
    pub fn feature(&self) -> FeatureSize {
        self.feature
    }

    /// Fan-out-of-4 inverter stage delay, in picoseconds — the unit of all
    /// logic delay in the models.
    pub fn tau_fo4_ps(&self) -> f64 {
        self.tau_fo4_ps
    }

    /// Metal wire resistance per λ, in ohms.
    pub fn r_per_lambda_ohm(&self) -> f64 {
        self.r_per_lambda_ohm
    }

    /// Metal wire capacitance per λ, in femtofarads.
    pub fn c_per_lambda_ff(&self) -> f64 {
        self.c_per_lambda_ff
    }

    /// Models for all three feature sizes, oldest first.
    pub fn all() -> [Technology; 3] {
        FeatureSize::all().map(Technology::new)
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} technology", self.feature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_is_half_feature() {
        assert_eq!(FeatureSize::U080.lambda_um(), 0.4);
        assert_eq!(FeatureSize::U035.lambda_um(), 0.175);
        assert_eq!(FeatureSize::U018.lambda_um(), 0.09);
    }

    #[test]
    fn logic_gets_faster_with_scaling() {
        let [t08, t035, t018] = Technology::all();
        assert!(t08.tau_fo4_ps() > t035.tau_fo4_ps());
        assert!(t035.tau_fo4_ps() > t018.tau_fo4_ps());
    }

    #[test]
    fn wire_parameters_do_not_scale() {
        // The paper's scaling model keeps per-λ wire RC constant, which is
        // exactly what makes wire-dominated structures critical in the future.
        let [t08, t035, t018] = Technology::all();
        assert_eq!(t08.r_per_lambda_ohm(), t018.r_per_lambda_ohm());
        assert_eq!(t08.c_per_lambda_ff(), t035.c_per_lambda_ff());
    }

    #[test]
    fn display_forms() {
        assert_eq!(FeatureSize::U035.to_string(), "0.35um");
        assert!(Technology::new(FeatureSize::U018).to_string().contains("0.18"));
    }
}
