//! Structured error taxonomy and parameter domains for the delay models.
//!
//! Every fallible entry point in this crate (`try_compute`, `validate`,
//! the anchor/shape verification in [`anchors`](crate::anchors)) reports
//! failures through [`DelayError`], so callers can distinguish *your
//! inputs were outside the modeled domain* from *the model itself
//! produced garbage* from *the calibration no longer matches the paper*.
//! The panicking `compute` wrappers remain for the common "parameters are
//! known-good constants" case and simply unwrap the `try_` path, so both
//! roads run the same validation — in release builds too, unlike the
//! `debug_assert!` guards this module replaced.
//!
//! ## Parameter domains
//!
//! The models are calibrated against the paper's 2–8-way, 8–128-entry
//! design points and extrapolate cleanly some distance beyond; the
//! [`domain`] constants bound how far. Outside a domain the structural
//! equations still evaluate, but the results would be physically
//! meaningless (kilometre-long wires, megaport register files), so the
//! `try_` paths refuse with [`DelayError::OutOfDomain`] instead of
//! returning a number nobody should trust.

use std::fmt;

/// Everything that can go wrong when evaluating a delay model.
#[derive(Debug, Clone, PartialEq)]
pub enum DelayError {
    /// A parameter lies outside the modeled domain (see [`domain`]).
    OutOfDomain {
        /// Structure whose model rejected the parameter (`"rename"`, …).
        structure: &'static str,
        /// Parameter name (`"issue_width"`, `"window_size"`, …).
        param: &'static str,
        /// The offending value.
        value: f64,
        /// Smallest accepted value.
        min: f64,
        /// Largest accepted value.
        max: f64,
    },
    /// A stage-level intermediate came out NaN, infinite, or negative —
    /// the model produced garbage even though the inputs validated.
    NonFinite {
        /// Structure whose model produced the value.
        structure: &'static str,
        /// Which intermediate (`"bitline_ps"`, `"tag_drive_ps"`, …).
        stage: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A computed quantity drifted outside the recorded tolerance of a
    /// paper anchor (see [`anchors`](crate::anchors)).
    CalibrationDrift {
        /// Anchor identifier (`"tab02.rename.4way.0.18um"`, …).
        anchor: &'static str,
        /// The value the model produced.
        got: f64,
        /// The paper's printed value.
        expected: f64,
        /// Recorded relative tolerance (fraction of `expected`).
        tolerance: f64,
    },
    /// A growth-shape assertion failed: the model no longer grows
    /// linearly / quadratically / logarithmically where the paper's
    /// structural analysis says it must.
    ShapeViolation {
        /// Structure whose shape broke (`"bypass"`, `"select"`, …).
        structure: &'static str,
        /// The shape that was asserted (`"quadratic-in-width"`, …).
        shape: &'static str,
        /// Human-readable evidence (finite differences, fitted terms).
        detail: String,
    },
}

impl fmt::Display for DelayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DelayError::OutOfDomain { structure, param, value, min, max } => write!(
                f,
                "{structure}: {param} = {value} outside modeled domain [{min}, {max}]"
            ),
            DelayError::NonFinite { structure, stage, value } => write!(
                f,
                "{structure}: intermediate {stage} is not a finite non-negative \
                 delay (got {value})"
            ),
            DelayError::CalibrationDrift { anchor, got, expected, tolerance } => write!(
                f,
                "calibration drift at {anchor}: got {got:.1}, paper prints {expected:.1} \
                 (recorded tolerance ±{:.1} %)",
                tolerance * 100.0
            ),
            DelayError::ShapeViolation { structure, shape, detail } => {
                write!(f, "{structure}: {shape} shape violated: {detail}")
            }
        }
    }
}

impl std::error::Error for DelayError {}

/// An inclusive parameter domain, checkable against any numeric input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Domain {
    /// Smallest accepted value.
    pub min: f64,
    /// Largest accepted value.
    pub max: f64,
}

impl Domain {
    /// Returns `Ok(())` when `value` is finite and inside the domain.
    ///
    /// # Errors
    ///
    /// [`DelayError::OutOfDomain`] naming the structure and parameter.
    pub fn check(
        &self,
        structure: &'static str,
        param: &'static str,
        value: f64,
    ) -> Result<(), DelayError> {
        if value.is_finite() && (self.min..=self.max).contains(&value) {
            Ok(())
        } else {
            Err(DelayError::OutOfDomain {
                structure,
                param,
                value,
                min: self.min,
                max: self.max,
            })
        }
    }

    /// [`Domain::check`] for integer-valued parameters.
    ///
    /// # Errors
    ///
    /// [`DelayError::OutOfDomain`] naming the structure and parameter.
    pub fn check_usize(
        &self,
        structure: &'static str,
        param: &'static str,
        value: usize,
    ) -> Result<(), DelayError> {
        self.check(structure, param, value as f64)
    }
}

/// Documented parameter domains for every model input.
///
/// The paper's own design space is 2–8-way machines with 8–128-entry
/// windows in 0.8/0.35/0.18 µm CMOS; the domains extend far enough beyond
/// to support the sweeps in `ce-bench` (16-way bypass, 256-entry select
/// trees, megabyte caches) while refusing inputs the structural layout
/// model could only answer with nonsense.
pub mod domain {
    use super::Domain;

    /// Instructions renamed/issued per cycle. Paper: 2–8; model: up to 64
    /// (beyond that the quadratic register-file height term dominates
    /// everything and the flat-layout assumption has long broken down).
    pub const ISSUE_WIDTH: Domain = Domain { min: 1.0, max: 64.0 };
    /// Issue-window / selection-tree entries. Paper: 8–128.
    pub const WINDOW_SIZE: Domain = Domain { min: 1.0, max: 1024.0 };
    /// Physical registers (CAM rename entries, reservation-table bits).
    pub const PHYSICAL_REGS: Domain = Domain { min: 1.0, max: 4096.0 };
    /// Wire length in λ. Zero is legal (a degenerate wire); the cap is an
    /// order of magnitude above the longest sweep wire (16-way bypass,
    /// ~131 kλ).
    pub const WIRE_LENGTH_LAMBDA: Domain = Domain { min: 0.0, max: 1.0e7 };
    /// FO4-equivalent logic depth of one structure stage.
    pub const LOGIC_STAGES: Domain = Domain { min: 0.0, max: 1.0e4 };
    /// Buffer-chain capacitance ratio (load over minimum inverter input).
    pub const CAP_RATIO: Domain = Domain { min: 1.0e-6, max: 1.0e12 };
    /// Driver size in multiples of a minimum inverter.
    pub const DRIVER_SIZE: Domain = Domain { min: 1.0, max: 1.0e6 };
    /// Arbiter-cell fan-in (the paper found 4 optimal).
    pub const ARBITER_FANIN: Domain = Domain { min: 2.0, max: 64.0 };
    /// Simultaneous grants from one selection block.
    pub const GRANTS: Domain = Domain { min: 1.0, max: 64.0 };
    /// Pipe stages after the first result-producing stage (bypass paths).
    pub const PIPESTAGES: Domain = Domain { min: 0.0, max: 64.0 };
    /// Register-file ports (read + write).
    pub const REGFILE_PORTS: Domain = Domain { min: 1.0, max: 256.0 };
    /// Register-file data width in bits.
    pub const REGFILE_BITS: Domain = Domain { min: 1.0, max: 1024.0 };
    /// Cache capacity in bytes (up to 1 GiB).
    pub const CACHE_BYTES: Domain = Domain { min: 1.0, max: (1u64 << 30) as f64 };
    /// Cache associativity.
    pub const CACHE_WAYS: Domain = Domain { min: 1.0, max: 64.0 };
    /// Cache line size in bytes.
    pub const CACHE_LINE_BYTES: Domain = Domain { min: 1.0, max: 4096.0 };
    /// Cache read ports.
    pub const CACHE_PORTS: Domain = Domain { min: 1.0, max: 64.0 };
    /// Target clock period in picoseconds.
    pub const CLOCK_PS: Domain = Domain { min: 1.0e-3, max: 1.0e9 };
    /// Clusters in a clustered machine.
    pub const CLUSTERS: Domain = Domain { min: 1.0, max: 64.0 };
}

/// Checks that a stage-level intermediate is a finite, non-negative delay
/// and passes it through.
///
/// # Errors
///
/// [`DelayError::NonFinite`] naming the structure and stage.
pub fn ensure_finite(
    structure: &'static str,
    stage: &'static str,
    value: f64,
) -> Result<f64, DelayError> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(DelayError::NonFinite { structure, stage, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_check_accepts_interior_and_edges() {
        let d = Domain { min: 1.0, max: 8.0 };
        assert!(d.check("s", "p", 1.0).is_ok());
        assert!(d.check("s", "p", 8.0).is_ok());
        assert!(d.check("s", "p", 4.5).is_ok());
        assert!(d.check_usize("s", "p", 3).is_ok());
    }

    #[test]
    fn domain_check_rejects_outside_and_nonfinite() {
        let d = Domain { min: 1.0, max: 8.0 };
        for bad in [0.0, 9.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = d.check("wakeup", "window_size", bad).unwrap_err();
            match err {
                DelayError::OutOfDomain { structure, param, min, max, .. } => {
                    assert_eq!(structure, "wakeup");
                    assert_eq!(param, "window_size");
                    assert_eq!((min, max), (1.0, 8.0));
                }
                other => panic!("wrong variant: {other:?}"),
            }
        }
    }

    #[test]
    fn ensure_finite_passes_values_through() {
        assert_eq!(ensure_finite("s", "stage", 12.5).unwrap(), 12.5);
        assert_eq!(ensure_finite("s", "stage", 0.0).unwrap(), 0.0);
        for bad in [f64::NAN, f64::INFINITY, -1.0e-9] {
            assert!(ensure_finite("s", "stage", bad).is_err());
        }
    }

    #[test]
    fn display_forms_name_the_failure() {
        let e = DelayError::OutOfDomain {
            structure: "rename",
            param: "issue_width",
            value: 0.0,
            min: 1.0,
            max: 64.0,
        };
        let s = e.to_string();
        assert!(s.contains("rename") && s.contains("issue_width") && s.contains("domain"));

        let e = DelayError::NonFinite {
            structure: "wakeup",
            stage: "tag_drive_ps",
            value: f64::NAN,
        };
        assert!(e.to_string().contains("tag_drive_ps"));

        let e = DelayError::CalibrationDrift {
            anchor: "tab01.delay.4way",
            got: 200.0,
            expected: 184.9,
            tolerance: 0.03,
        };
        let s = e.to_string();
        assert!(s.contains("drift") && s.contains("184.9"));

        let e = DelayError::ShapeViolation {
            structure: "select",
            shape: "logarithmic",
            detail: "step changed".into(),
        };
        assert!(e.to_string().contains("logarithmic"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&DelayError::NonFinite { structure: "s", stage: "t", value: 0.0 });
    }
}
