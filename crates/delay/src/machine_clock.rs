//! Unified clock-period model for arbitrary machine organizations — the
//! delay half of the closed-loop design-space explorer.
//!
//! [`PipelineDelays`] answers "what does the paper's window machine cost"
//! and [`ClockComparison`](crate::pipeline::ClockComparison) answers "how
//! do the paper's two 8-way designs compare", but the explorer needs one
//! question answered for *every* point of a joint design space: given an
//! issue width, a cluster count, and a scheduler geometry (flexible
//! window or dependence-based FIFOs), what clock period does the delay
//! model imply? This module rolls the per-structure models into that
//! single number, with the same structural assumptions the paper's
//! comparisons use:
//!
//! * **Rename** runs at the full machine width — steering happens after
//!   rename, so the map table sees every dispatched instruction.
//! * **Window logic** is per-cluster. A flexible window pays CAM wakeup
//!   over its per-cluster entries plus selection over those entries; a
//!   FIFO scheduler pays the reservation table (at machine width — every
//!   result updates it) plus selection over the FIFO heads only.
//! * **Bypass** is the intra-cluster network at cluster width; the
//!   slower inter-cluster paths are an IPC cost the simulator charges,
//!   not a cycle-time cost (Section 5.4's premise).
//!
//! The minimum clock is the slowest of the three, matching
//! [`PipelineDelays::clock_period_ps`]'s critical-stage rule: wakeup +
//! select and bypass are atomic (Section 4.5), and rename — pipelineable
//! in principle — is the floor the paper's §5.3 "optimistic" improvement
//! bottoms out at.

use crate::bypass::{BypassDelay, BypassParams};
use crate::error::{domain, DelayError};
use crate::rename::{RenameDelay, RenameParams};
use crate::restable::{ResTableDelay, ResTableParams};
use crate::select::{SelectDelay, SelectParams};
use crate::wakeup::{WakeupDelay, WakeupParams};
use crate::Technology;

/// The scheduler organization of a design point, as the delay model sees
/// it (the simulator distinguishes more variants — steered windows,
/// steering heuristics — but those differ in IPC, not cycle time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerGeometry {
    /// Flexible issue window(s): CAM wakeup + full selection over the
    /// per-cluster entries. Covers the paper's central window and the
    /// §5.6.2/5.6.3 per-cluster windows alike.
    Window,
    /// Dependence-based FIFOs: reservation-table wakeup + selection over
    /// the FIFO heads only (Section 5.2).
    Fifos {
        /// Issue FIFOs per cluster (the paper's configuration has 8).
        fifos_per_cluster: usize,
    },
}

/// A design point's geometry, technology-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MachineParams {
    /// Machine issue width, summed over clusters.
    pub issue_width: usize,
    /// Execution clusters (1 = unclustered).
    pub clusters: usize,
    /// Total scheduler entries machine-wide (window entries, or FIFO
    /// count × depth).
    pub window_size: usize,
    /// Scheduler organization.
    pub geometry: SchedulerGeometry,
}

/// The delay roll-up for one design point in one technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineClock {
    /// Rename delay at machine width, ps.
    pub rename_ps: f64,
    /// Per-cluster window logic (wakeup + select, or reservation table +
    /// head select), ps.
    pub window_logic_ps: f64,
    /// Intra-cluster bypass delay at cluster width, ps.
    pub bypass_ps: f64,
}

impl MachineClock {
    /// Computes the clock-period roll-up for one design point.
    ///
    /// # Errors
    ///
    /// [`DelayError::OutOfDomain`] for a geometry the structural models
    /// cannot answer (cluster count outside [`domain::CLUSTERS`], a
    /// cluster count that does not divide the width or leaves an empty
    /// per-cluster scheduler, a FIFO count that does not divide the
    /// per-cluster capacity), or the first error any structure model
    /// reports for the derived per-structure parameters.
    pub fn try_compute(
        tech: &Technology,
        params: &MachineParams,
    ) -> Result<MachineClock, DelayError> {
        let MachineParams { issue_width, clusters, window_size, geometry } = *params;
        domain::CLUSTERS.check_usize("machine", "clusters", clusters)?;
        if clusters == 0 || !issue_width.is_multiple_of(clusters) || window_size / clusters == 0
        {
            return Err(DelayError::OutOfDomain {
                structure: "machine",
                param: "clusters",
                value: clusters as f64,
                min: 1.0,
                max: issue_width.min(window_size) as f64,
            });
        }
        let cluster_width = issue_width / clusters;
        let cluster_window = window_size / clusters;

        let rename_ps =
            RenameDelay::try_compute(tech, &RenameParams::new(issue_width))?.total_ps();
        let bypass_ps =
            BypassDelay::try_compute(tech, &BypassParams::new(cluster_width))?.total_ps();
        let window_logic_ps = match geometry {
            SchedulerGeometry::Window => {
                let wakeup = WakeupDelay::try_compute(
                    tech,
                    &WakeupParams::new(cluster_width, cluster_window),
                )?
                .total_ps();
                let select =
                    SelectDelay::try_compute(tech, &SelectParams::new(cluster_window))?
                        .total_ps();
                wakeup + select
            }
            SchedulerGeometry::Fifos { fifos_per_cluster } => {
                if fifos_per_cluster == 0
                    || !cluster_window.is_multiple_of(fifos_per_cluster)
                {
                    return Err(DelayError::OutOfDomain {
                        structure: "machine",
                        param: "fifos_per_cluster",
                        value: fifos_per_cluster as f64,
                        min: 1.0,
                        max: cluster_window as f64,
                    });
                }
                let restable =
                    ResTableDelay::try_compute(tech, &ResTableParams::new(issue_width))?
                        .total_ps();
                // Selection arbitrates over the FIFO heads; grant capacity
                // still has to cover the cluster's issue width (matching
                // ClockComparison's `8.max(cluster_width)` head select).
                let heads = fifos_per_cluster.max(cluster_width);
                let select =
                    SelectDelay::try_compute(tech, &SelectParams::new(heads))?.total_ps();
                restable + select
            }
        };

        Ok(MachineClock { rename_ps, window_logic_ps, bypass_ps })
    }

    /// Minimum clock period: the slowest of rename, window logic, and
    /// bypass — the same critical-stage rule as
    /// [`PipelineDelays::clock_period_ps`].
    ///
    /// [`PipelineDelays::clock_period_ps`]: crate::PipelineDelays::clock_period_ps
    pub fn clock_ps(&self) -> f64 {
        self.rename_ps.max(self.window_logic_ps).max(self.bypass_ps)
    }

    /// Which structure limits the clock, as a stable label for reports.
    pub fn critical(&self) -> &'static str {
        if self.window_logic_ps >= self.rename_ps && self.window_logic_ps >= self.bypass_ps {
            "window"
        } else if self.rename_ps >= self.bypass_ps {
            "rename"
        } else {
            "bypass"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ClockComparison;
    use crate::{FeatureSize, PipelineDelays};

    #[test]
    fn unclustered_window_matches_pipeline_delays() {
        for tech in Technology::all() {
            for (iw, win) in [(4usize, 32usize), (8, 64)] {
                let p = MachineParams {
                    issue_width: iw,
                    clusters: 1,
                    window_size: win,
                    geometry: SchedulerGeometry::Window,
                };
                let m = MachineClock::try_compute(&tech, &p).unwrap();
                let d = PipelineDelays::try_compute(&tech, iw, win).unwrap();
                assert_eq!(m.rename_ps, d.rename_ps, "{tech} {iw}/{win}");
                assert_eq!(m.window_logic_ps, d.window_ps(), "{tech} {iw}/{win}");
                assert_eq!(m.bypass_ps, d.bypass_ps, "{tech} {iw}/{win}");
                assert_eq!(m.clock_ps(), d.clock_period_ps(), "{tech} {iw}/{win}");
            }
        }
    }

    #[test]
    fn clustered_window_matches_the_paper_comparison_clock() {
        // The §5.5 comparison pins the clustered machine's clock to the
        // per-cluster window logic; MachineClock must agree on that
        // component for the same 8-way/64-entry/2-cluster machine.
        for tech in Technology::all() {
            let cmp = ClockComparison::try_compute(&tech, 8, 64, 2).unwrap();
            let m = MachineClock::try_compute(
                &tech,
                &MachineParams {
                    issue_width: 8,
                    clusters: 2,
                    window_size: 64,
                    geometry: SchedulerGeometry::Window,
                },
            )
            .unwrap();
            assert_eq!(m.window_logic_ps, cmp.dependence_clock_ps, "{tech}");
        }
    }

    #[test]
    fn paper_fifo_machine_matches_the_dependence_window_path() {
        // The paper's 2×4-way, 4-FIFO/cluster machine: reservation table
        // at width 8 plus an 8-head select (ClockComparison's
        // `8.max(cluster_width)` with 4-wide clusters) — identical inputs,
        // identical delay.
        for tech in Technology::all() {
            let cmp = ClockComparison::try_compute(&tech, 8, 64, 2).unwrap();
            let m = MachineClock::try_compute(
                &tech,
                &MachineParams {
                    issue_width: 8,
                    clusters: 2,
                    window_size: 64,
                    geometry: SchedulerGeometry::Fifos { fifos_per_cluster: 8 },
                },
            )
            .unwrap();
            assert_eq!(m.window_logic_ps, cmp.dependence_window_ps, "{tech}");
        }
    }

    #[test]
    fn fifo_window_logic_undercuts_the_cam_window() {
        // The whole dependence-based argument: FIFO-head wakeup must be
        // cheaper than CAM wakeup for the same machine shape.
        for tech in Technology::all() {
            let base = MachineParams {
                issue_width: 8,
                clusters: 2,
                window_size: 64,
                geometry: SchedulerGeometry::Window,
            };
            let win = MachineClock::try_compute(&tech, &base).unwrap();
            let fifo = MachineClock::try_compute(
                &tech,
                &MachineParams {
                    geometry: SchedulerGeometry::Fifos { fifos_per_cluster: 8 },
                    ..base
                },
            )
            .unwrap();
            assert!(
                fifo.window_logic_ps < win.window_logic_ps,
                "{tech}: fifo {:.1} !< window {:.1}",
                fifo.window_logic_ps,
                win.window_logic_ps
            );
        }
    }

    #[test]
    fn invalid_geometries_are_refused_not_panicked() {
        let tech = Technology::new(FeatureSize::U018);
        let bad = [
            // clusters don't divide width
            MachineParams {
                issue_width: 8,
                clusters: 3,
                window_size: 64,
                geometry: SchedulerGeometry::Window,
            },
            // empty per-cluster window
            MachineParams {
                issue_width: 8,
                clusters: 8,
                window_size: 4,
                geometry: SchedulerGeometry::Window,
            },
            // FIFO count doesn't divide the per-cluster capacity
            MachineParams {
                issue_width: 8,
                clusters: 2,
                window_size: 64,
                geometry: SchedulerGeometry::Fifos { fifos_per_cluster: 3 },
            },
            // zero FIFOs
            MachineParams {
                issue_width: 8,
                clusters: 1,
                window_size: 64,
                geometry: SchedulerGeometry::Fifos { fifos_per_cluster: 0 },
            },
            // window outside the modeled domain
            MachineParams {
                issue_width: 8,
                clusters: 1,
                window_size: 2048,
                geometry: SchedulerGeometry::Window,
            },
        ];
        for p in bad {
            assert!(
                matches!(
                    MachineClock::try_compute(&tech, &p),
                    Err(DelayError::OutOfDomain { .. })
                ),
                "{p:?} should be out of domain"
            );
        }
    }

    #[test]
    fn critical_structure_labels_track_the_max() {
        let tech = Technology::new(FeatureSize::U018);
        let m = MachineClock::try_compute(
            &tech,
            &MachineParams {
                issue_width: 4,
                clusters: 1,
                window_size: 32,
                geometry: SchedulerGeometry::Window,
            },
        )
        .unwrap();
        assert_eq!(m.critical(), "window", "4-way window logic dominates (Table 2)");
        assert_eq!(m.clock_ps(), m.window_logic_ps);
    }
}
