//! Calibration constants for the delay models.
//!
//! Every tunable number in the crate lives here, with the paper anchor it
//! was fitted against. The **structural equations** in the sibling modules
//! decide how delay *grows* with issue width, window size, and feature size;
//! these constants only pin the absolute scale, standing in for the
//! transistor-level Hspice netlists of the original study.
//!
//! Fitting procedure: the three `TAU_FO4_*` values and the wire RC product
//! were solved from the paper's Table 1 and Table 2 anchor rows (rename at
//! 4-way matches Table 2 exactly by construction); the remaining geometry
//! and stage counts were chosen so the published totals for the other
//! configurations land within ~10 %, with the residuals recorded in
//! EXPERIMENTS.md.

// ---------------------------------------------------------------------------
// Technology.
// ---------------------------------------------------------------------------

/// FO4 stage delay at 0.8 µm (5 V class), picoseconds.
/// Fit: Table 2 rename 4-way at 0.8 µm = 1577.9 ps.
pub const TAU_FO4_080_PS: f64 = 98.19;
/// FO4 stage delay at 0.35 µm (3.3 V class), picoseconds.
/// Fit: Table 2 rename 4-way at 0.35 µm = 627.2 ps. Deliberately *not*
/// proportional to feature size — supply voltage drops between generations.
pub const TAU_FO4_035_PS: f64 = 36.19;
/// FO4 stage delay at 0.18 µm (2 V class), picoseconds.
/// Fit: Table 2 rename 4-way at 0.18 µm = 351.0 ps.
pub const TAU_FO4_018_PS: f64 = 18.18;

/// Metal resistance per λ, ohms. Together with [`C_PER_LAMBDA_FF`] this
/// reproduces Table 1: a 20 500 λ result wire has 184.9 ps distributed-RC
/// delay. Held constant across generations (the paper's scaling model).
pub const R_PER_LAMBDA_OHM: f64 = 0.0145;
/// Metal capacitance per λ, femtofarads. See [`R_PER_LAMBDA_OHM`].
pub const C_PER_LAMBDA_FF: f64 = 0.08;

/// Effective output resistance of the large wire drivers used on bitlines,
/// tag lines, and predecode lines, ohms. Constant across generations: a
/// driver's W/L in λ is fixed, so its resistance does not scale — which is
/// precisely why `R_driver · C_wire` terms refuse to shrink with feature
/// size while pure logic does.
pub const R_DRIVER_OHM: f64 = 50.0;

/// Effective resistance of a dynamic-comparator pulldown stack, ohms.
pub const R_PULLDOWN_OHM: f64 = 500.0;

/// Resistance of a minimum-size inverter at 0.18 µm, ohms (used for
/// generic driver sizing).
pub const R_MIN_DRIVER_OHM: f64 = 2000.0;

// ---------------------------------------------------------------------------
// Register rename logic (Section 4.1, Figure 3).
// ---------------------------------------------------------------------------

/// Number of logical (architectural) registers; fixes the bitline length.
pub const LOGICAL_REGS: usize = 32;
/// Width of a physical register designator in bits; fixes wordline length.
pub const PHYS_REG_BITS: usize = 7;
/// Map-table cell height/width, base term, λ.
pub const RENAME_CELL_BASE_LAMBDA: f64 = 40.0;
/// Map-table cell growth per port (3 ports per rename slot), λ.
pub const RENAME_CELL_PER_PORT_LAMBDA: f64 = 10.0;
/// Address decoder logic depth, FO4 stages.
pub const RENAME_DECODE_STAGES: f64 = 5.0;
/// Wordline driver logic depth, FO4 stages.
pub const RENAME_WORDLINE_STAGES: f64 = 3.0;
/// Bitline access/discharge logic depth, FO4 stages.
pub const RENAME_BITLINE_STAGES: f64 = 4.0;
/// Sense amplifier logic depth, FO4 stages.
pub const RENAME_SENSE_STAGES: f64 = 10.0 / 3.0;

// ---------------------------------------------------------------------------
// Wakeup logic (Section 4.2, Figures 5 and 6).
// ---------------------------------------------------------------------------

/// CAM cell height, base term, λ.
pub const WAKEUP_CELL_BASE_LAMBDA: f64 = 20.0;
/// CAM cell height growth per broadcast tag (one per issue slot), λ.
pub const WAKEUP_CELL_PER_TAG_LAMBDA: f64 = 26.0;
/// Comparator input capacitance at 0.18 µm, fF (scales with λ).
pub const CMP_INPUT_CAP_018_FF: f64 = 4.0;
/// Tag-drive buffer logic depth, FO4 stages.
pub const TAG_DRIVE_STAGES: f64 = 4.0;
/// Dynamic comparator (tag match) logic depth, FO4 stages.
pub const TAG_MATCH_STAGES: f64 = 3.5;
/// Match OR + ready-flag update base logic depth, FO4 stages.
pub const MATCH_OR_BASE_STAGES: f64 = 5.0;
/// Additional OR depth per doubling of issue width, FO4 stages.
pub const MATCH_OR_STAGES_PER_LOG2: f64 = 1.0;
/// Matchline base length factor, λ (multiplied by the tag width in bits).
pub const MATCHLINE_BASE_LAMBDA: f64 = 10.0;
/// Matchline growth per broadcast tag, λ per bit of tag width.
pub const MATCHLINE_PER_TAG_LAMBDA: f64 = 10.0;
/// Result-tag width in bits (physical register designator).
pub const TAG_WIDTH_BITS: usize = 7;

// ---------------------------------------------------------------------------
// Selection logic (Section 4.3, Figure 8).
// ---------------------------------------------------------------------------

/// Arbiter-cell fan-in; the paper found four optimal (as in the R10000).
pub const SELECT_FANIN: usize = 4;
/// Request (`anyreq`) propagation depth per tree level, FO4 stages.
pub const SELECT_REQ_STAGES_PER_LEVEL: f64 = 2.5;
/// Grant propagation depth per tree level, FO4 stages.
pub const SELECT_GRANT_STAGES_PER_LEVEL: f64 = 2.5;
/// Root-cell (priority encode + grant) depth, FO4 stages.
pub const SELECT_ROOT_STAGES: f64 = 4.0;
/// Additional depth per extra simultaneous grant when one selection block
/// schedules several identical functional units (stacked arbitration, per
/// the companion tech report), FO4 stages.
pub const SELECT_EXTRA_GRANT_STAGES: f64 = 1.5;

// ---------------------------------------------------------------------------
// Bypass logic (Section 4.4, Table 1).
// ---------------------------------------------------------------------------

/// Height of one functional-unit bit-slice stack, λ.
/// Fit (with the register-file terms): Table 1 wire lengths — 20 500 λ at
/// 4-way, 49 000 λ at 8-way.
pub const FU_HEIGHT_LAMBDA: f64 = 4000.0;
/// Register-file height, base term, λ.
pub const REGFILE_BASE_LAMBDA: f64 = 324.0;
/// Register-file height growth per port² (ports = 3 × issue width), λ.
pub const REGFILE_PER_PORT_SQ_LAMBDA: f64 = 29.0;

// ---------------------------------------------------------------------------
// Reservation table (Section 5.3, Table 4).
// ---------------------------------------------------------------------------

/// Reservation-table access base depth, FO4 stages.
/// Fit: Table 4 — 192.1 ps at 4-way/80 regs, 251.7 ps at 8-way/128 regs.
pub const RESTABLE_BASE_STAGES: f64 = 7.64;
/// Additional depth per issue slot (port circuitry, column mux fan-in),
/// FO4 stages.
pub const RESTABLE_STAGES_PER_SLOT: f64 = 0.64;
/// Bits per reservation-table row (the paper lays 80 registers out as a
/// 10-entry × 8-bit array).
pub const RESTABLE_ROW_BITS: usize = 8;
/// Reservation-table cell size, base term, λ.
pub const RESTABLE_CELL_BASE_LAMBDA: f64 = 20.0;
/// Reservation-table cell growth per port, λ.
pub const RESTABLE_CELL_PER_PORT_LAMBDA: f64 = 6.0;
