//! Paper-anchor oracle: the delay values the paper actually prints, with
//! recorded tolerances, plus growth-shape assertions.
//!
//! The calibration tests scattered through the model modules each pin one
//! number; this module collects **every** printed anchor — Table 1 (bypass
//! wire lengths and delays), Table 2 / Figure 3 (the six-row stage-delay
//! roll-up), Table 4 (reservation table), Figure 5 (wakeup growth with
//! issue width), Figure 6 (wire-bound fraction across technologies), and
//! the Section 5.3/5.5 clock claims — into one machine-checkable list, so
//! any calibration drift is caught as a [`DelayError::CalibrationDrift`]
//! with the anchor named, rather than as a scattered test failure.
//!
//! Each anchor's tolerance is *recorded*, not aspirational: it is the
//! known residual of the analytical model against the paper's Hspice
//! numbers plus headroom (the Figure 5 growth anchors, for instance, carry
//! wide tolerances because the structural model reproduces the ordering
//! and rough scale of the growth, not the printed percentages — see
//! `EXPERIMENTS.md`). Drift means *exceeding the recorded residual*, i.e.
//! the model changed, not that the model was ever exact.
//!
//! Shape assertions cover what Figure 8 and the structural equations print
//! qualitatively rather than numerically: rename and bypass grow
//! quadratically in issue width (bypass exactly, rename with a small
//! quadratic term), wakeup tag drive is linear + quadratic in window size
//! with an issue-width-dependent quadratic coefficient, and selection is
//! step-logarithmic (delay constant across each ⌈log₄ W⌉ tier). These are
//! verified with exact finite differences, not curve fitting.

use crate::bypass::{BypassDelay, BypassParams};
use crate::error::DelayError;
use crate::pipeline::{ClockComparison, PipelineDelays};
use crate::rename::{RenameDelay, RenameParams};
use crate::restable::{ResTableDelay, ResTableParams};
use crate::select::{SelectDelay, SelectParams};
use crate::wakeup::{WakeupDelay, WakeupParams};
use crate::{FeatureSize, Technology};

/// One printed value from the paper, with its recorded tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Anchor {
    /// Stable identifier, e.g. `"tab02.rename.4way.0.18um"`.
    pub id: &'static str,
    /// Where the paper prints it, e.g. `"Table 2"`.
    pub artifact: &'static str,
    /// Unit of the value (`"ps"`, `"lambda"`, `"ratio"`, `"fraction"`).
    pub unit: &'static str,
    /// The printed value.
    pub expected: f64,
    /// Recorded relative tolerance (fraction of `expected`).
    pub tol_frac: f64,
}

/// The outcome of evaluating one anchor against the current model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnchorCheck {
    /// The anchor that was evaluated.
    pub anchor: Anchor,
    /// The value the model produced.
    pub got: f64,
    /// `|got − expected| / |expected|`.
    pub residual_frac: f64,
    /// Whether the residual is inside the recorded tolerance.
    pub pass: bool,
}

impl AnchorCheck {
    fn new(anchor: Anchor, got: f64) -> AnchorCheck {
        let residual_frac = (got - anchor.expected).abs() / anchor.expected.abs();
        AnchorCheck { anchor, got, residual_frac, pass: residual_frac <= anchor.tol_frac }
    }

    /// The drift error this check represents when it fails.
    pub fn drift(&self) -> Option<DelayError> {
        (!self.pass).then_some(DelayError::CalibrationDrift {
            anchor: self.anchor.id,
            got: self.got,
            expected: self.anchor.expected,
            tolerance: self.anchor.tol_frac,
        })
    }
}

/// The outcome of one growth-shape assertion.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeCheck {
    /// Stable identifier, e.g. `"shape.bypass.quadratic"`.
    pub id: &'static str,
    /// Structure the shape belongs to.
    pub structure: &'static str,
    /// The asserted shape.
    pub shape: &'static str,
    /// Evidence (finite differences, tier values).
    pub detail: String,
    /// Whether the shape held.
    pub pass: bool,
}

impl ShapeCheck {
    /// The violation error this check represents when it fails.
    pub fn violation(&self) -> Option<DelayError> {
        (!self.pass).then(|| DelayError::ShapeViolation {
            structure: self.structure,
            shape: self.shape,
            detail: self.detail.clone(),
        })
    }
}

const T2_ROWS: [(FeatureSize, &str); 3] =
    [(FeatureSize::U080, "0.8um"), (FeatureSize::U035, "0.35um"), (FeatureSize::U018, "0.18um")];

/// Paper Table 2: (rename, wakeup+select, bypass) per technology, for the
/// (4-way, 32-entry) and (8-way, 64-entry) configurations.
const TABLE2_PS: [[(f64, f64, f64); 2]; 3] = [
    [(1577.9, 2903.7, 184.9), (1710.5, 3369.4, 1056.4)],
    [(627.2, 1248.4, 184.9), (726.6, 1484.8, 1056.4)],
    [(351.0, 578.0, 184.9), (427.9, 724.0, 1056.4)],
];

/// Recorded tolerances for Table 2: rename is within 5 % at 4-way and
/// 15 % at 8-way; wakeup+select within 15 %; bypass within 3 %.
const T2_TOL: [(f64, f64, f64); 2] = [(0.05, 0.15, 0.03), (0.15, 0.15, 0.03)];

macro_rules! t2_anchors {
    ($($tech:literal, $cfg:literal, $ti:expr, $ci:expr);* $(;)?) => {
        [$(
            [
                Anchor {
                    id: concat!("tab02.rename.", $cfg, ".", $tech),
                    artifact: "Table 2 / Figure 3",
                    unit: "ps",
                    expected: TABLE2_PS[$ti][$ci].0,
                    tol_frac: T2_TOL[$ci].0,
                },
                Anchor {
                    id: concat!("tab02.window.", $cfg, ".", $tech),
                    artifact: "Table 2",
                    unit: "ps",
                    expected: TABLE2_PS[$ti][$ci].1,
                    tol_frac: T2_TOL[$ci].1,
                },
                Anchor {
                    id: concat!("tab02.bypass.", $cfg, ".", $tech),
                    artifact: "Table 2 / Table 1",
                    unit: "ps",
                    expected: TABLE2_PS[$ti][$ci].2,
                    tol_frac: T2_TOL[$ci].2,
                },
            ],
        )*]
    };
}

/// All Table 2 anchors in row order (tech-major, configuration-minor).
const TABLE2_ANCHORS: [[Anchor; 3]; 6] = t2_anchors![
    "0.8um", "4way", 0, 0;
    "0.8um", "8way", 0, 1;
    "0.35um", "4way", 1, 0;
    "0.35um", "8way", 1, 1;
    "0.18um", "4way", 2, 0;
    "0.18um", "8way", 2, 1;
];

/// Evaluates every printed anchor against the current model, via the
/// validated `try_compute` paths.
///
/// # Errors
///
/// A [`DelayError`] from the underlying models (domain or finite-ness
/// failures) — *not* calibration drift; drift is reported per-check in the
/// returned list so a report can show every residual.
pub fn evaluate_all() -> Result<Vec<AnchorCheck>, DelayError> {
    let mut checks = Vec::new();
    let u018 = Technology::new(FeatureSize::U018);

    // Table 1: bypass result-wire lengths (technology-independent λ) and
    // delays (identical across technologies under the scaling model).
    let b4 = BypassDelay::try_compute(&u018, &BypassParams::new(4))?;
    let b8 = BypassDelay::try_compute(&u018, &BypassParams::new(8))?;
    checks.push(AnchorCheck::new(
        Anchor {
            id: "tab01.length.4way",
            artifact: "Table 1",
            unit: "lambda",
            expected: 20_500.0,
            tol_frac: 0.01,
        },
        b4.wire_length_lambda,
    ));
    checks.push(AnchorCheck::new(
        Anchor {
            id: "tab01.length.8way",
            artifact: "Table 1",
            unit: "lambda",
            expected: 49_000.0,
            tol_frac: 0.01,
        },
        b8.wire_length_lambda,
    ));
    checks.push(AnchorCheck::new(
        Anchor {
            id: "tab01.delay.4way",
            artifact: "Table 1",
            unit: "ps",
            expected: 184.9,
            tol_frac: 0.03,
        },
        b4.total_ps(),
    ));
    checks.push(AnchorCheck::new(
        Anchor {
            id: "tab01.delay.8way",
            artifact: "Table 1",
            unit: "ps",
            expected: 1056.4,
            tol_frac: 0.03,
        },
        b8.total_ps(),
    ));

    // Table 2 (the rename column doubles as Figure 3's printed points).
    for (row, (feature, _)) in T2_ROWS.iter().enumerate() {
        let tech = Technology::new(*feature);
        for (cfg, (iw, w)) in [(4usize, 32usize), (8, 64)].iter().enumerate() {
            let d = PipelineDelays::try_compute(&tech, *iw, *w)?;
            let [rename, window, bypass] = TABLE2_ANCHORS[row * 2 + cfg];
            checks.push(AnchorCheck::new(rename, d.rename_ps));
            checks.push(AnchorCheck::new(window, d.window_ps()));
            checks.push(AnchorCheck::new(bypass, d.bypass_ps));
        }
    }

    // Table 4: reservation-table access at 0.18 µm.
    for (id, iw, expected) in [
        ("tab04.restable.4way", 4usize, 192.1),
        ("tab04.restable.8way", 8, 251.7),
    ] {
        let d = ResTableDelay::try_compute(&u018, &ResTableParams::new(iw))?;
        checks.push(AnchorCheck::new(
            Anchor { id, artifact: "Table 4", unit: "ps", expected, tol_frac: 0.05 },
            d.total_ps(),
        ));
    }

    // Figure 5: wakeup growth with issue width at a 64-entry window. The
    // model reproduces the ordering and rough magnitude, not the printed
    // percentages — hence the deliberately wide recorded tolerances.
    let w2 = WakeupDelay::try_compute(&u018, &WakeupParams::new(2, 64))?.total_ps();
    let w4 = WakeupDelay::try_compute(&u018, &WakeupParams::new(4, 64))?.total_ps();
    let w8 = WakeupDelay::try_compute(&u018, &WakeupParams::new(8, 64))?.total_ps();
    checks.push(AnchorCheck::new(
        Anchor {
            id: "fig05.growth.2to4way",
            artifact: "Figure 5",
            unit: "fraction",
            expected: 0.34,
            tol_frac: 0.55,
        },
        w4 / w2 - 1.0,
    ));
    checks.push(AnchorCheck::new(
        Anchor {
            id: "fig05.growth.4to8way",
            artifact: "Figure 5",
            unit: "fraction",
            expected: 0.46,
            tol_frac: 0.35,
        },
        w8 / w4 - 1.0,
    ));

    // Figure 6: wire-bound fraction of wakeup (tag drive + tag match) for
    // the 8-way, 64-entry window, rising as features shrink.
    for (id, feature, expected) in [
        ("fig06.wire_fraction.0.8um", FeatureSize::U080, 0.52),
        ("fig06.wire_fraction.0.18um", FeatureSize::U018, 0.65),
    ] {
        let d = WakeupDelay::try_compute(&Technology::new(feature), &WakeupParams::new(8, 64))?;
        checks.push(AnchorCheck::new(
            Anchor { id, artifact: "Figure 6", unit: "fraction", expected, tol_frac: 0.12 },
            d.wire_bound_fraction(),
        ));
    }

    // Section 5.5: clk_dep / clk_win ≈ 1.25 at 0.18 µm (8-way vs 2×4-way).
    let cmp = ClockComparison::try_compute(&u018, 8, 64, 2)?;
    checks.push(AnchorCheck::new(
        Anchor {
            id: "sec5.5.clock_ratio",
            artifact: "Section 5.5",
            unit: "ratio",
            expected: 1.25,
            tol_frac: 0.08,
        },
        cmp.conservative_speedup(),
    ));
    // Section 5.3: the "admittedly optimistic" 39 % clock improvement for
    // the 4-way machine once rename becomes critical.
    let d4 = PipelineDelays::try_compute(&u018, 4, 32)?;
    checks.push(AnchorCheck::new(
        Anchor {
            id: "sec5.3.optimistic_improvement",
            artifact: "Section 5.3",
            unit: "fraction",
            expected: 0.39,
            tol_frac: 0.21,
        },
        1.0 - d4.rename_ps / d4.window_ps(),
    ));

    Ok(checks)
}

/// Relative scale used to call a finite difference "zero".
const FD_EPS: f64 = 1e-6;

fn third_difference_vanishes(d: &[f64; 4]) -> (f64, bool) {
    // For samples at equal parameter spacing, a quadratic has an exactly
    // zero third difference; allow only floating-point noise.
    let third = (d[3] - 3.0 * d[2] + 3.0 * d[1] - d[0]).abs();
    let scale = d.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    (third, third <= FD_EPS * scale)
}

/// Verifies the growth shapes the paper's structural analysis mandates.
/// Each check's `pass` flag records the outcome; the function itself only
/// fails if the models cannot be evaluated at all.
///
/// # Errors
///
/// A [`DelayError`] from the underlying models.
pub fn verify_shapes() -> Result<Vec<ShapeCheck>, DelayError> {
    let tech = Technology::new(FeatureSize::U018);
    let mut checks = Vec::new();

    // Bypass: wire length is an exact quadratic in issue width (FU stack
    // linear, register-file height quadratic in ports), so the delay is
    // superlinear and the length's third difference vanishes.
    let len: [f64; 4] = [2usize, 4, 6, 8].map(|iw| BypassParams::new(iw).wire_length_lambda());
    let (third, quad) = third_difference_vanishes(&len);
    let second = (len[2] - len[1]) - (len[1] - len[0]);
    checks.push(ShapeCheck {
        id: "shape.bypass.quadratic-in-width",
        structure: "bypass",
        shape: "quadratic-in-width",
        detail: format!("third difference {third:.3e}, second difference {second:.1}"),
        pass: quad && second > 0.0,
    });

    // Rename (RAM scheme): total delay is linear in issue width plus a
    // *small* quadratic wire term (Section 4.1.2) — quadratic fit exact,
    // curvature positive but well below the linear slope.
    let ren: [f64; 4] = {
        let mut out = [0.0; 4];
        for (i, iw) in [2usize, 4, 6, 8].iter().enumerate() {
            out[i] = RenameDelay::try_compute(&tech, &RenameParams::new(*iw))?.total_ps();
        }
        out
    };
    let (third, quad) = third_difference_vanishes(&ren);
    let first = ren[1] - ren[0];
    let second = (ren[2] - ren[1]) - (ren[1] - ren[0]);
    checks.push(ShapeCheck {
        id: "shape.rename.linear-plus-small-quadratic",
        structure: "rename",
        shape: "linear-plus-small-quadratic",
        detail: format!(
            "third difference {third:.3e}, curvature {second:.2} vs slope {first:.2}"
        ),
        pass: quad && second > 0.0 && second < first,
    });

    // Wakeup: tag drive is linear + quadratic in window size, and the
    // quadratic coefficient grows with issue width (taller CAM cells make
    // longer tag lines); tag match and match OR are window-independent.
    let mut curvature = [0.0f64; 2];
    let mut tag_quad = true;
    let mut third_max = 0.0f64;
    for (slot, iw) in [2usize, 8].iter().enumerate() {
        let mut drive = [0.0; 4];
        for (i, w) in [16usize, 32, 48, 64].iter().enumerate() {
            drive[i] = WakeupDelay::try_compute(&tech, &WakeupParams::new(*iw, *w))?.tag_drive_ps;
        }
        let (third, quad) = third_difference_vanishes(&drive);
        third_max = third_max.max(third);
        tag_quad &= quad;
        curvature[slot] = (drive[2] - drive[1]) - (drive[1] - drive[0]);
    }
    let near = WakeupDelay::try_compute(&tech, &WakeupParams::new(4, 16))?;
    let far = WakeupDelay::try_compute(&tech, &WakeupParams::new(4, 64))?;
    checks.push(ShapeCheck {
        id: "shape.wakeup.linear-plus-quadratic-in-window",
        structure: "wakeup",
        shape: "linear-plus-quadratic-in-window",
        detail: format!(
            "third difference {third_max:.3e}, curvature 2-way {:.3} vs 8-way {:.3}, \
             match/OR window shift {:.3e}",
            curvature[0],
            curvature[1],
            (far.tag_match_ps - near.tag_match_ps).abs()
                + (far.match_or_ps - near.match_or_ps).abs(),
        ),
        pass: tag_quad
            && curvature[0] > 0.0
            && curvature[1] > curvature[0]
            && far.tag_match_ps == near.tag_match_ps
            && far.match_or_ps == near.match_or_ps,
    });

    // Select: step-logarithmic in window size — constant across each
    // ⌈log₄ W⌉ tier, stepping up at tier boundaries, with the root-cell
    // delay window-independent.
    let sel = |w: usize| -> Result<SelectDelay, DelayError> {
        SelectDelay::try_compute(&tech, &SelectParams::new(w))
    };
    let d17 = sel(17)?;
    let d64 = sel(64)?;
    let d65 = sel(65)?;
    let d16 = sel(16)?;
    checks.push(ShapeCheck {
        id: "shape.select.step-logarithmic",
        structure: "select",
        shape: "step-logarithmic",
        detail: format!(
            "tier(17..64) {:.2}/{:.2} ps, step at 65 {:.2} ps, root {:.2}/{:.2} ps",
            d17.total_ps(),
            d64.total_ps(),
            d65.total_ps(),
            d16.root_ps,
            d65.root_ps,
        ),
        pass: d17.total_ps() == d64.total_ps()
            && d65.total_ps() > d64.total_ps()
            && d16.total_ps() < d17.total_ps()
            && d16.root_ps == d65.root_ps,
    });

    Ok(checks)
}

/// Runs the full oracle: every anchor and every shape assertion.
///
/// # Errors
///
/// The first failure, as a typed [`DelayError`]: model evaluation errors
/// pass through, a failing anchor becomes
/// [`DelayError::CalibrationDrift`], a failing shape becomes
/// [`DelayError::ShapeViolation`].
pub fn check() -> Result<(), DelayError> {
    for c in evaluate_all()? {
        if let Some(err) = c.drift() {
            return Err(err);
        }
    }
    for s in verify_shapes()? {
        if let Some(err) = s.violation() {
            return Err(err);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_anchor_is_within_its_recorded_tolerance() {
        for c in evaluate_all().unwrap() {
            assert!(
                c.pass,
                "{}: got {:.3}, expected {:.3} (±{:.0} %), residual {:.1} %",
                c.anchor.id,
                c.got,
                c.anchor.expected,
                c.anchor.tol_frac * 100.0,
                c.residual_frac * 100.0
            );
        }
    }

    #[test]
    fn every_shape_holds() {
        for s in verify_shapes().unwrap() {
            assert!(s.pass, "{}: {}", s.id, s.detail);
        }
    }

    #[test]
    fn check_passes_on_the_shipped_calibration() {
        check().unwrap();
    }

    #[test]
    fn anchor_ids_are_unique_and_well_formed() {
        let checks = evaluate_all().unwrap();
        let mut ids: Vec<&str> = checks.iter().map(|c| c.anchor.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate anchor ids");
        for c in &checks {
            assert!(c.anchor.tol_frac > 0.0 && c.anchor.tol_frac < 1.0, "{}", c.anchor.id);
            assert!(c.anchor.expected.is_finite() && c.got.is_finite(), "{}", c.anchor.id);
        }
        // The full oracle covers all four tables/figures plus both clock
        // claims: 4 (Table 1) + 18 (Table 2) + 2 (Table 4) + 2 (Figure 5)
        // + 2 (Figure 6) + 2 (Sections 5.3/5.5).
        assert_eq!(n, 30);
    }

    #[test]
    fn drift_is_reported_as_a_typed_error() {
        let c = AnchorCheck::new(
            Anchor {
                id: "test.anchor",
                artifact: "Table 0",
                unit: "ps",
                expected: 100.0,
                tol_frac: 0.05,
            },
            110.0,
        );
        assert!(!c.pass);
        match c.drift().unwrap() {
            DelayError::CalibrationDrift { anchor, got, expected, tolerance } => {
                assert_eq!(anchor, "test.anchor");
                assert_eq!(got, 110.0);
                assert_eq!(expected, 100.0);
                assert_eq!(tolerance, 0.05);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
