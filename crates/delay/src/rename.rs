//! Register rename logic delay (paper Section 4.1, Figure 3).
//!
//! The RAM scheme (MIPS R10000 style) is modeled as a multi-ported register
//! map table: 32 logical-register entries of 7-bit physical designators,
//! with 3 ports per rename slot (two source reads plus one destination
//! write). Increasing issue width adds ports, which grows every cell in both
//! dimensions, lengthening the predecode, wordline, and bitline wires — the
//! paper's "net effect": decode, wordline and bitline delays are effectively
//! linear in issue width, with small quadratic wire terms.
//!
//! The CAM scheme (DEC 21264 / HAL SPARC64 style) is also provided for the
//! Section 4.1.1 comparison: its array has one entry per *physical* register,
//! so it scales worse as machines get wider.

use crate::error::{domain, ensure_finite, DelayError};
use crate::wire::Wire;
use crate::{calib, gates, Technology};

/// Which rename organization to model (Section 4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RenameScheme {
    /// Map-table RAM indexed by logical register (R10000). The paper's
    /// focus, and the default.
    #[default]
    Ram,
    /// CAM keyed on logical designator with one entry per physical register
    /// (21264 / SPARC64).
    Cam,
}

/// Parameters of the rename logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenameParams {
    /// Instructions renamed per cycle.
    pub issue_width: usize,
    /// Number of physical registers (sets the CAM size and designator width).
    pub physical_regs: usize,
    /// RAM or CAM organization.
    pub scheme: RenameScheme,
}

impl RenameParams {
    /// RAM-scheme parameters for a machine of the given issue width, with
    /// the paper's 120-physical-register configuration.
    pub fn new(issue_width: usize) -> RenameParams {
        RenameParams { issue_width, physical_regs: 120, scheme: RenameScheme::Ram }
    }

    /// Ports into the map table: two source reads and one destination write
    /// per rename slot.
    pub fn ports(&self) -> usize {
        3 * self.issue_width
    }

    /// Validates the parameters against the modeled domains
    /// ([`domain::ISSUE_WIDTH`], [`domain::PHYSICAL_REGS`]).
    ///
    /// # Errors
    ///
    /// [`DelayError::OutOfDomain`] naming the first violated parameter.
    pub fn validate(&self) -> Result<(), DelayError> {
        domain::ISSUE_WIDTH.check_usize("rename", "issue_width", self.issue_width)?;
        domain::PHYSICAL_REGS.check_usize("rename", "physical_regs", self.physical_regs)?;
        Ok(())
    }
}

/// Delay breakdown of the rename logic, all in picoseconds.
///
/// Mirrors the paper's decomposition:
/// `T_rename = T_decode + T_wordline + T_bitline + T_senseamp`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenameDelay {
    /// Address decoder delay.
    pub decode_ps: f64,
    /// Wordline drive delay.
    pub wordline_ps: f64,
    /// Bitline discharge delay.
    pub bitline_ps: f64,
    /// Sense amplifier delay.
    pub senseamp_ps: f64,
}

impl RenameDelay {
    /// Computes the rename delay for the given technology and parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`RenameParams::validate`] — in
    /// release builds too; use [`RenameDelay::try_compute`] for a checked
    /// path.
    pub fn compute(tech: &Technology, params: &RenameParams) -> RenameDelay {
        assert!(params.issue_width > 0, "issue width must be positive");
        Self::try_compute(tech, params).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked form of [`RenameDelay::compute`]: validates the parameters
    /// and verifies every stage-level intermediate is a finite
    /// non-negative delay.
    ///
    /// # Errors
    ///
    /// [`DelayError::OutOfDomain`] for parameters outside the modeled
    /// domain; [`DelayError::NonFinite`] if a component still came out
    /// NaN, infinite, or negative.
    pub fn try_compute(tech: &Technology, params: &RenameParams) -> Result<RenameDelay, DelayError> {
        params.validate()?;
        let d = match params.scheme {
            RenameScheme::Ram => Self::compute_ram(tech, params),
            RenameScheme::Cam => Self::compute_cam(tech, params),
        };
        ensure_finite("rename", "decode_ps", d.decode_ps)?;
        ensure_finite("rename", "wordline_ps", d.wordline_ps)?;
        ensure_finite("rename", "bitline_ps", d.bitline_ps)?;
        ensure_finite("rename", "senseamp_ps", d.senseamp_ps)?;
        ensure_finite("rename", "total_ps", d.total_ps())?;
        Ok(d)
    }

    fn compute_ram(tech: &Technology, params: &RenameParams) -> RenameDelay {
        let ports = params.ports() as f64;
        let cell =
            calib::RENAME_CELL_BASE_LAMBDA + calib::RENAME_CELL_PER_PORT_LAMBDA * ports;
        let entries = calib::LOGICAL_REGS as f64;
        let bits = calib::PHYS_REG_BITS as f64;

        // Predecode lines run the height of the array (same span as the
        // bitlines); wordlines run across the bits of one entry; bitlines
        // run the height of the array.
        let predecode = Wire::new(entries * cell);
        let wordline = Wire::new(bits * cell);
        let bitline = Wire::new(entries * cell);

        let drive = |w: &Wire| {
            calib::R_DRIVER_OHM * w.capacitance_ff(tech) * 1e-3 + w.delay_ps(tech)
        };

        let decode_ps =
            gates::stages_ps(tech, calib::RENAME_DECODE_STAGES) + drive(&predecode);
        let wordline_ps =
            gates::stages_ps(tech, calib::RENAME_WORDLINE_STAGES) + drive(&wordline);
        let bitline_ps =
            gates::stages_ps(tech, calib::RENAME_BITLINE_STAGES) + drive(&bitline);
        // The sense amp's delay tracks the slope of its bitline input
        // (Section 4.1.2), which our model folds into a fixed fraction of
        // the bitline wire term.
        let senseamp_ps =
            gates::stages_ps(tech, calib::RENAME_SENSE_STAGES) + 0.1 * drive(&bitline);

        RenameDelay { decode_ps, wordline_ps, bitline_ps, senseamp_ps }
    }

    fn compute_cam(tech: &Technology, params: &RenameParams) -> RenameDelay {
        // CAM: one entry per physical register; renaming matches the logical
        // designator against every entry, so the "bitline" role is played by
        // the match/tag lines spanning all physical registers.
        let ports = params.ports() as f64;
        let cell =
            calib::RENAME_CELL_BASE_LAMBDA + calib::RENAME_CELL_PER_PORT_LAMBDA * ports;
        let entries = params.physical_regs as f64;
        let bits = 5.0; // logical designator width

        let tagline = Wire::new(entries * cell);
        let matchline = Wire::new(bits * cell);

        let drive = |w: &Wire| {
            calib::R_DRIVER_OHM * w.capacitance_ff(tech) * 1e-3 + w.delay_ps(tech)
        };

        // No decoder; the designator is broadcast (decode slot reports 0).
        let decode_ps = 0.0;
        let wordline_ps = gates::stages_ps(tech, calib::TAG_DRIVE_STAGES) + drive(&tagline);
        let bitline_ps =
            gates::stages_ps(tech, calib::TAG_MATCH_STAGES) + drive(&matchline);
        // Match resolution + read of the matched entry.
        let senseamp_ps =
            gates::stages_ps(tech, calib::RENAME_SENSE_STAGES + 1.0) + 0.1 * drive(&tagline);

        RenameDelay { decode_ps, wordline_ps, bitline_ps, senseamp_ps }
    }

    /// Total rename delay, picoseconds.
    pub fn total_ps(&self) -> f64 {
        self.decode_ps + self.wordline_ps + self.bitline_ps + self.senseamp_ps
    }
}

/// Delay of the dependence-check (intra-group) comparison logic.
///
/// The paper found this always hides behind the map-table access for issue
/// widths up to 8; the model preserves that property: a comparator tree over
/// the current rename group.
pub fn dependence_check_ps(tech: &Technology, issue_width: usize) -> f64 {
    assert!(issue_width > 0);
    try_dependence_check_ps(tech, issue_width).unwrap_or_else(|e| panic!("{e}"))
}

/// Checked form of [`dependence_check_ps`].
///
/// # Errors
///
/// [`DelayError::OutOfDomain`] if `issue_width` is outside
/// [`domain::ISSUE_WIDTH`].
pub fn try_dependence_check_ps(
    tech: &Technology,
    issue_width: usize,
) -> Result<f64, DelayError> {
    domain::ISSUE_WIDTH.check_usize("rename", "issue_width", issue_width)?;
    // Compare against up to (issue_width - 1) earlier destinations, then
    // priority-select the youngest: log-depth comparator + mux tree.
    let levels = gates::try_tree_height(issue_width.max(2), 2)? as f64;
    let d = gates::try_stages_ps(tech, 2.0 + 1.5 * levels)?;
    ensure_finite("rename", "dependence_check_ps", d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureSize;

    fn ram(tech: &Technology, iw: usize) -> RenameDelay {
        RenameDelay::compute(tech, &RenameParams::new(iw))
    }

    #[test]
    fn table2_anchor_4way() {
        // Paper Table 2 rename, 4-way: 1577.9 / 627.2 / 351.0 ps.
        let expected = [1577.9, 627.2, 351.0];
        for (tech, want) in Technology::all().iter().zip(expected) {
            let got = ram(tech, 4).total_ps();
            assert!((got - want).abs() / want < 0.05, "{tech}: got {got}, want {want}");
        }
    }

    #[test]
    fn table2_anchor_8way() {
        // Paper Table 2 rename, 8-way: 1710.5 / 726.6 / 427.9 ps.
        let expected = [1710.5, 726.6, 427.9];
        for (tech, want) in Technology::all().iter().zip(expected) {
            let got = ram(tech, 8).total_ps();
            assert!((got - want).abs() / want < 0.15, "{tech}: got {got}, want {want}");
        }
    }

    #[test]
    fn delay_increases_linearly_with_issue_width() {
        let tech = Technology::new(FeatureSize::U018);
        let d2 = ram(&tech, 2).total_ps();
        let d4 = ram(&tech, 4).total_ps();
        let d8 = ram(&tech, 8).total_ps();
        assert!(d2 < d4 && d4 < d8);
        // Effectively linear: the 4→8 increment is roughly twice the 2→4
        // increment, inflated a little by the small quadratic wire term
        // (Section 4.1.2: "the quadratic component is relatively small").
        let ratio = (d8 - d4) / (d4 - d2);
        assert!((1.5..=3.0).contains(&ratio), "increment ratio {ratio}");
    }

    #[test]
    fn bitline_grows_faster_than_wordline() {
        // Bitlines span 32 logical registers; wordlines span only ~7 bits.
        let tech = Technology::new(FeatureSize::U018);
        let d4 = ram(&tech, 4);
        let d8 = ram(&tech, 8);
        let bitline_growth = d8.bitline_ps - d4.bitline_ps;
        let wordline_growth = d8.wordline_ps - d4.wordline_ps;
        assert!(bitline_growth > wordline_growth);
    }

    #[test]
    fn wire_fraction_grows_as_feature_shrinks() {
        // Section 4.1.3: wire delays in word/bitline structures become
        // increasingly important as feature sizes are reduced.
        let frac = |f: FeatureSize| {
            let tech = Technology::new(f);
            let d = ram(&tech, 8);
            let logic = crate::gates::stages_ps(
                &tech,
                calib::RENAME_DECODE_STAGES
                    + calib::RENAME_WORDLINE_STAGES
                    + calib::RENAME_BITLINE_STAGES
                    + calib::RENAME_SENSE_STAGES,
            );
            (d.total_ps() - logic) / d.total_ps()
        };
        assert!(frac(FeatureSize::U018) > frac(FeatureSize::U035));
        assert!(frac(FeatureSize::U035) > frac(FeatureSize::U080));
    }

    #[test]
    fn cam_scheme_scales_worse_with_physical_registers() {
        let tech = Technology::new(FeatureSize::U018);
        let small = RenameDelay::compute(
            &tech,
            &RenameParams { issue_width: 4, physical_regs: 80, scheme: RenameScheme::Cam },
        );
        let big = RenameDelay::compute(
            &tech,
            &RenameParams { issue_width: 4, physical_regs: 160, scheme: RenameScheme::Cam },
        );
        assert!(big.total_ps() > small.total_ps());
        // The RAM scheme is insensitive to physical register count.
        let ram_small = RenameDelay::compute(
            &tech,
            &RenameParams { issue_width: 4, physical_regs: 80, scheme: RenameScheme::Ram },
        );
        let ram_big = RenameDelay::compute(
            &tech,
            &RenameParams { issue_width: 4, physical_regs: 160, scheme: RenameScheme::Ram },
        );
        assert_eq!(ram_small.total_ps(), ram_big.total_ps());
    }

    #[test]
    fn dependence_check_hides_behind_map_table() {
        // Section 4.1.1: for issue widths 2–8 the check is faster than the
        // map-table access.
        for tech in Technology::all() {
            for iw in [2, 4, 8] {
                assert!(
                    dependence_check_ps(&tech, iw) < ram(&tech, iw).total_ps(),
                    "{tech}, {iw}-way"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_issue_width_panics() {
        let tech = Technology::new(FeatureSize::U018);
        let _ = ram(&tech, 0);
    }

    #[test]
    fn try_compute_rejects_out_of_domain_params() {
        let tech = Technology::new(FeatureSize::U018);
        for bad in [
            RenameParams { issue_width: 0, physical_regs: 120, scheme: RenameScheme::Ram },
            RenameParams { issue_width: 65, physical_regs: 120, scheme: RenameScheme::Ram },
            RenameParams { issue_width: 4, physical_regs: 0, scheme: RenameScheme::Cam },
            RenameParams { issue_width: 4, physical_regs: 1 << 20, scheme: RenameScheme::Cam },
        ] {
            assert!(
                matches!(
                    RenameDelay::try_compute(&tech, &bad),
                    Err(DelayError::OutOfDomain { structure: "rename", .. })
                ),
                "{bad:?} must be refused"
            );
        }
    }

    #[test]
    fn try_compute_matches_compute_on_valid_params() {
        for tech in Technology::all() {
            for iw in [1, 2, 4, 8, 16] {
                let p = RenameParams::new(iw);
                assert_eq!(RenameDelay::try_compute(&tech, &p).unwrap(), ram(&tech, iw));
                let c = RenameParams { scheme: RenameScheme::Cam, ..p };
                assert_eq!(
                    RenameDelay::try_compute(&tech, &c).unwrap(),
                    RenameDelay::compute(&tech, &c)
                );
            }
        }
        assert!(try_dependence_check_ps(&Technology::new(FeatureSize::U018), 0).is_err());
    }
}
