//! Register-file access-time model (an extension after Farkas, Jouppi &
//! Chow, whom the paper cites for how access time varies with register and
//! port count).
//!
//! The paper's Section 5.4 lists a third benefit of clustering beyond
//! window and bypass relief: "using multiple copies of the register file
//! reduces the number of ports on the register file and will make the
//! access time of the register file faster." This module makes that claim
//! computable with the same structural style as the rename model: a
//! multi-ported RAM whose cells grow with port count in both dimensions.
//!
//! No anchor values exist in the paper for this structure, so absolute
//! numbers are indicative; the *relative* claim (a clustered copy beats
//! the centralized file) is what the model is for.

use crate::error::{domain, ensure_finite, DelayError};
use crate::wire::Wire;
use crate::{calib, gates, Technology};

/// Parameters of a register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegfileParams {
    /// Number of physical registers.
    pub registers: usize,
    /// Total ports (read + write).
    pub ports: usize,
    /// Data width in bits.
    pub bits: usize,
}

impl RegfileParams {
    /// The centralized file of an `issue_width`-wide machine: 2 read and 1
    /// write port per issue slot, 64-bit registers (the era's Alpha/MIPS
    /// generation), the paper's 120 physical registers.
    pub fn centralized(issue_width: usize) -> RegfileParams {
        RegfileParams { registers: 120, ports: 3 * issue_width, bits: 64 }
    }

    /// One cluster's copy in a `clusters`-way clustered machine: full port
    /// complement for the local slots, plus one write port per remote slot
    /// (every result is written to every copy — Section 5.4's organization).
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero or does not divide `issue_width`.
    pub fn clustered_copy(issue_width: usize, clusters: usize) -> RegfileParams {
        assert!(clusters > 0, "need at least one cluster");
        assert_eq!(issue_width % clusters, 0, "clusters must divide issue width");
        let local = issue_width / clusters;
        let remote_writes = issue_width - local;
        RegfileParams { registers: 120, ports: 3 * local + remote_writes, bits: 64 }
    }

    /// Validates the parameters against the modeled domains
    /// ([`domain::PHYSICAL_REGS`], [`domain::REGFILE_PORTS`],
    /// [`domain::REGFILE_BITS`]).
    ///
    /// # Errors
    ///
    /// [`DelayError::OutOfDomain`] naming the first violated parameter.
    pub fn validate(&self) -> Result<(), DelayError> {
        domain::PHYSICAL_REGS.check_usize("regfile", "registers", self.registers)?;
        domain::REGFILE_PORTS.check_usize("regfile", "ports", self.ports)?;
        domain::REGFILE_BITS.check_usize("regfile", "bits", self.bits)?;
        Ok(())
    }
}

/// Register-file access delay breakdown, picoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegfileDelay {
    /// Address decode.
    pub decode_ps: f64,
    /// Wordline drive (spans the 64-bit data width).
    pub wordline_ps: f64,
    /// Bitline discharge (spans all registers).
    pub bitline_ps: f64,
    /// Sense amplification.
    pub senseamp_ps: f64,
}

impl RegfileDelay {
    /// Computes the access delay.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero, or if the parameters fail
    /// [`RegfileParams::validate`] — in release builds too; use
    /// [`RegfileDelay::try_compute`] for a checked path.
    pub fn compute(tech: &Technology, params: &RegfileParams) -> RegfileDelay {
        assert!(
            params.registers > 0 && params.ports > 0 && params.bits > 0,
            "register file parameters must be positive"
        );
        Self::try_compute(tech, params).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked form of [`RegfileDelay::compute`]: validates the parameters
    /// and verifies every stage-level intermediate is a finite
    /// non-negative delay.
    ///
    /// # Errors
    ///
    /// [`DelayError::OutOfDomain`] for parameters outside the modeled
    /// domain; [`DelayError::NonFinite`] if a component still came out
    /// NaN, infinite, or negative.
    pub fn try_compute(
        tech: &Technology,
        params: &RegfileParams,
    ) -> Result<RegfileDelay, DelayError> {
        params.validate()?;
        let cell = calib::RENAME_CELL_BASE_LAMBDA
            + calib::RENAME_CELL_PER_PORT_LAMBDA * params.ports as f64;
        let wordline = Wire::try_new(params.bits as f64 * cell)?;
        let bitline = Wire::try_new(params.registers as f64 * cell)?;
        let drive = |w: &Wire| {
            calib::R_DRIVER_OHM * w.capacitance_ff(tech) * 1e-3 + w.delay_ps(tech)
        };
        let d = RegfileDelay {
            decode_ps: gates::try_stages_ps(tech, calib::RENAME_DECODE_STAGES)?
                + drive(&bitline),
            wordline_ps: gates::try_stages_ps(tech, calib::RENAME_WORDLINE_STAGES)?
                + drive(&wordline),
            bitline_ps: gates::try_stages_ps(tech, calib::RENAME_BITLINE_STAGES)?
                + drive(&bitline),
            senseamp_ps: gates::try_stages_ps(tech, calib::RENAME_SENSE_STAGES)?
                + 0.1 * drive(&bitline),
        };
        ensure_finite("regfile", "decode_ps", d.decode_ps)?;
        ensure_finite("regfile", "wordline_ps", d.wordline_ps)?;
        ensure_finite("regfile", "bitline_ps", d.bitline_ps)?;
        ensure_finite("regfile", "senseamp_ps", d.senseamp_ps)?;
        ensure_finite("regfile", "total_ps", d.total_ps())?;
        Ok(d)
    }

    /// Total access delay, picoseconds.
    pub fn total_ps(&self) -> f64 {
        self.decode_ps + self.wordline_ps + self.bitline_ps + self.senseamp_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureSize;

    fn tech() -> Technology {
        Technology::new(FeatureSize::U018)
    }

    #[test]
    fn port_counts_follow_section_5_4() {
        assert_eq!(RegfileParams::centralized(8).ports, 24);
        // 2 clusters of 4-way: 12 local ports + 4 remote write ports.
        assert_eq!(RegfileParams::clustered_copy(8, 2).ports, 16);
        // One cluster degenerates to the centralized file.
        assert_eq!(
            RegfileParams::clustered_copy(8, 1).ports,
            RegfileParams::centralized(8).ports
        );
    }

    #[test]
    fn clustered_copy_is_faster_than_centralized() {
        // Section 5.4's third advantage of clustering.
        let central =
            RegfileDelay::compute(&tech(), &RegfileParams::centralized(8)).total_ps();
        let copy =
            RegfileDelay::compute(&tech(), &RegfileParams::clustered_copy(8, 2)).total_ps();
        assert!(copy < central, "copy {copy} vs centralized {central}");
        assert!(central / copy > 1.05, "the gap should be material");
    }

    #[test]
    fn monotone_in_ports_and_registers() {
        let base = RegfileParams { registers: 120, ports: 12, bits: 64 };
        let d = |p: RegfileParams| RegfileDelay::compute(&tech(), &p).total_ps();
        assert!(d(RegfileParams { ports: 24, ..base }) > d(base));
        assert!(d(RegfileParams { registers: 240, ..base }) > d(base));
        assert!(d(RegfileParams { bits: 128, ..base }) > d(base));
    }

    #[test]
    fn slower_than_rename_table_at_same_width() {
        // 120 entries × 64 bits dwarfs the 32 × 7 map table.
        let rf = RegfileDelay::compute(&tech(), &RegfileParams::centralized(8)).total_ps();
        let rn = crate::rename::RenameDelay::compute(
            &tech(),
            &crate::rename::RenameParams::new(8),
        )
        .total_ps();
        assert!(rf > rn);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn bad_cluster_split_panics() {
        let _ = RegfileParams::clustered_copy(8, 3);
    }

    #[test]
    fn try_compute_rejects_out_of_domain_params() {
        for bad in [
            RegfileParams { registers: 0, ports: 12, bits: 64 },
            RegfileParams { registers: 120, ports: 0, bits: 64 },
            RegfileParams { registers: 120, ports: 257, bits: 64 },
            RegfileParams { registers: 120, ports: 12, bits: 2048 },
        ] {
            assert!(
                matches!(
                    RegfileDelay::try_compute(&tech(), &bad),
                    Err(crate::error::DelayError::OutOfDomain { structure: "regfile", .. })
                ),
                "{bad:?} must be refused"
            );
        }
    }

    #[test]
    fn try_compute_matches_compute_on_valid_params() {
        for iw in [2, 4, 8, 16] {
            let p = RegfileParams::centralized(iw);
            assert_eq!(
                RegfileDelay::try_compute(&tech(), &p).unwrap(),
                RegfileDelay::compute(&tech(), &p)
            );
        }
    }
}
