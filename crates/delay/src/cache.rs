//! Cache access-time model (after Wada et al. and Wilton & Jouppi, the
//! paper's references \[18\] and \[21\] for cache timing).
//!
//! The paper excludes caches from its own analysis because "the access
//! time of a cache is a function of the size of the cache and the
//! associativity of the cache" — already covered by those models — and
//! because caches *can be pipelined*. This module supplies a CACTI-flavoured
//! structural model in the same style as the rest of the crate, so whole-
//! pipeline clock studies (e.g. the `design_space` example) can price the
//! cache stage too:
//!
//! `T_cache = max(data path, tag path) + mux/select`
//!
//! * data path — decode + wordline + bitline + sense over the data array,
//! * tag path — the same over the (narrower) tag array, plus a comparator,
//! * output — way select / column mux, fan-in = associativity.

use crate::wire::Wire;
use crate::{calib, gates, Technology};

/// Geometry of a cache being timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Read ports.
    pub ports: usize,
}

impl CacheParams {
    /// The paper's Table 3 data cache: 32 KB, 2-way, 32-byte lines, 4
    /// load/store ports.
    pub fn table3_dcache() -> CacheParams {
        CacheParams { bytes: 32 * 1024, ways: 2, line_bytes: 32, ports: 4 }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.bytes / self.line_bytes / self.ways
    }

    /// Tag width in bits (32-bit addresses).
    pub fn tag_bits(&self) -> usize {
        let offset_bits = self.line_bytes.trailing_zeros() as usize;
        let index_bits = self.sets().trailing_zeros() as usize;
        32 - offset_bits - index_bits
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Describes the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.bytes == 0 || self.ways == 0 || self.line_bytes == 0 || self.ports == 0 {
            return Err("all cache parameters must be positive".into());
        }
        if !self.line_bytes.is_power_of_two() {
            return Err("line size must be a power of two".into());
        }
        let lines = self.bytes / self.line_bytes;
        if !lines.is_multiple_of(self.ways) || !(lines / self.ways).is_power_of_two() {
            return Err("sets must be a power of two".into());
        }
        Ok(())
    }
}

/// Cache access delay breakdown, picoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheDelay {
    /// Data-array access (decode + wordline + bitline + sense).
    pub data_path_ps: f64,
    /// Tag-array access plus comparison.
    pub tag_path_ps: f64,
    /// Way-select / output mux.
    pub select_ps: f64,
}

impl CacheDelay {
    /// Computes the access delay.
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails [`CacheParams::validate`].
    pub fn compute(tech: &Technology, params: &CacheParams) -> CacheDelay {
        if let Err(msg) = params.validate() {
            panic!("invalid cache geometry: {msg}");
        }
        // Multi-ported cells, as in the rename model. Large arrays are
        // banked into subarrays of at most 256 rows x 256 columns; what a
        // bigger cache pays is the *global routing* from the banks to the
        // output, which grows with the square root of the capacity.
        let cell = calib::RENAME_CELL_BASE_LAMBDA
            + calib::RENAME_CELL_PER_PORT_LAMBDA * params.ports as f64;
        let bits = (params.bytes * 8) as f64;
        let side = bits.sqrt();
        let rows = side.min(256.0);
        let cols = side.min(256.0);

        let drive = |w: &Wire| {
            calib::R_DRIVER_OHM * w.capacitance_ff(tech) * 1e-3 + w.delay_ps(tech)
        };
        let bitline = Wire::new(rows * cell);
        let wordline = Wire::new(cols * cell);
        // Bank-to-output routing spans the physical array edge.
        let routing = Wire::new(side * 8.0);
        let array_stages = calib::RENAME_DECODE_STAGES
            + calib::RENAME_WORDLINE_STAGES
            + calib::RENAME_BITLINE_STAGES
            + calib::RENAME_SENSE_STAGES;
        let data_path_ps = gates::stages_ps(tech, array_stages)
            + drive(&bitline) * 2.0 // predecode + bitline, as in rename
            + drive(&wordline)
            + drive(&routing);

        // The tag array is narrow (tag_bits per way) but has the same row
        // count per bank; the compare adds log-depth XOR/NOR stages.
        let tag_rows = (params.sets() as f64).min(256.0);
        let tag_bitline = Wire::new(tag_rows * cell);
        let tag_wordline = Wire::new(params.tag_bits() as f64 * cell);
        let cmp_stages = 2.0 + gates::tree_height(params.tag_bits().max(2), 4) as f64;
        let tag_path_ps = gates::stages_ps(tech, array_stages + cmp_stages)
            + drive(&tag_bitline) * 2.0
            + drive(&tag_wordline)
            + drive(&routing);

        // Way select: mux fan-in plus the select-signal drive across the
        // ways -- the part of the access that associativity makes slower.
        let select_stages = 1.0
            + gates::tree_height(params.ways.max(2), 4) as f64
            + 0.4 * params.ways as f64;
        let select_ps = gates::stages_ps(tech, select_stages);

        CacheDelay { data_path_ps, tag_path_ps, select_ps }
    }

    /// Total access time: the slower of the two parallel paths plus the
    /// output select.
    pub fn total_ps(&self) -> f64 {
        self.data_path_ps.max(self.tag_path_ps) + self.select_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureSize;

    fn tech() -> Technology {
        Technology::new(FeatureSize::U018)
    }

    #[test]
    fn table3_geometry() {
        let p = CacheParams::table3_dcache();
        assert_eq!(p.sets(), 512);
        assert_eq!(p.tag_bits(), 32 - 5 - 9);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn grows_with_size_and_associativity() {
        let d = |bytes, ways| {
            CacheDelay::compute(
                &tech(),
                &CacheParams { bytes, ways, line_bytes: 32, ports: 4 },
            )
            .total_ps()
        };
        assert!(d(64 * 1024, 2) > d(32 * 1024, 2), "bigger cache is slower");
        assert!(d(32 * 1024, 8) > d(32 * 1024, 2), "higher associativity is slower");
    }

    #[test]
    fn more_ports_are_slower() {
        let d = |ports| {
            CacheDelay::compute(
                &tech(),
                &CacheParams { ports, ..CacheParams::table3_dcache() },
            )
            .total_ps()
        };
        assert!(d(8) > d(4));
        assert!(d(4) > d(1));
    }

    #[test]
    fn tag_compare_costs_beyond_the_array() {
        let d = CacheDelay::compute(&tech(), &CacheParams::table3_dcache());
        assert!(d.select_ps > 0.0);
        assert!(d.total_ps() >= d.data_path_ps.max(d.tag_path_ps));
        // The tag array is narrower but pays the comparator: at Table 3
        // geometry the two paths are the same order of magnitude.
        let ratio = d.tag_path_ps / d.data_path_ps;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn comparable_to_the_window_logic_scale() {
        // Sanity: a 32 KB cache access lands in the same order of magnitude
        // as the other pipeline structures (it is pipelined in practice).
        let d = CacheDelay::compute(&tech(), &CacheParams::table3_dcache()).total_ps();
        assert!((200.0..3_000.0).contains(&d), "{d}");
    }

    #[test]
    #[should_panic(expected = "invalid cache geometry")]
    fn bad_geometry_panics() {
        let _ = CacheDelay::compute(
            &tech(),
            &CacheParams { bytes: 1000, ways: 3, line_bytes: 24, ports: 1 },
        );
    }
}
