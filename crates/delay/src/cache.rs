//! Cache access-time model (after Wada et al. and Wilton & Jouppi, the
//! paper's references \[18\] and \[21\] for cache timing).
//!
//! The paper excludes caches from its own analysis because "the access
//! time of a cache is a function of the size of the cache and the
//! associativity of the cache" — already covered by those models — and
//! because caches *can be pipelined*. This module supplies a CACTI-flavoured
//! structural model in the same style as the rest of the crate, so whole-
//! pipeline clock studies (e.g. the `design_space` example) can price the
//! cache stage too:
//!
//! `T_cache = max(data path, tag path) + mux/select`
//!
//! * data path — decode + wordline + bitline + sense over the data array,
//! * tag path — the same over the (narrower) tag array, plus a comparator,
//! * output — way select / column mux, fan-in = associativity.

use crate::error::{domain, ensure_finite, DelayError};
use crate::wire::Wire;
use crate::{calib, gates, Technology};

/// Geometry of a cache being timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Read ports.
    pub ports: usize,
}

impl CacheParams {
    /// The paper's Table 3 data cache: 32 KB, 2-way, 32-byte lines, 4
    /// load/store ports.
    pub fn table3_dcache() -> CacheParams {
        CacheParams { bytes: 32 * 1024, ways: 2, line_bytes: 32, ports: 4 }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.bytes / self.line_bytes / self.ways
    }

    /// Tag width in bits (32-bit addresses).
    pub fn tag_bits(&self) -> usize {
        let offset_bits = self.line_bytes.trailing_zeros() as usize;
        let index_bits = self.sets().trailing_zeros() as usize;
        32 - offset_bits - index_bits
    }

    /// Validates the geometry: every dimension inside its modeled domain
    /// ([`domain::CACHE_BYTES`], [`domain::CACHE_WAYS`],
    /// [`domain::CACHE_LINE_BYTES`], [`domain::CACHE_PORTS`]) and a
    /// realizable set structure (power-of-two line size and set count).
    ///
    /// # Errors
    ///
    /// [`DelayError::OutOfDomain`] for a dimension outside its domain;
    /// [`DelayError::ShapeViolation`] for a geometry that no power-of-two
    /// decoder can index.
    pub fn validate(&self) -> Result<(), DelayError> {
        domain::CACHE_BYTES.check_usize("cache", "bytes", self.bytes)?;
        domain::CACHE_WAYS.check_usize("cache", "ways", self.ways)?;
        domain::CACHE_LINE_BYTES.check_usize("cache", "line_bytes", self.line_bytes)?;
        domain::CACHE_PORTS.check_usize("cache", "ports", self.ports)?;
        if !self.line_bytes.is_power_of_two() {
            return Err(DelayError::ShapeViolation {
                structure: "cache",
                shape: "power-of-two line size",
                detail: format!("line_bytes = {}", self.line_bytes),
            });
        }
        let lines = self.bytes / self.line_bytes;
        if lines == 0
            || !lines.is_multiple_of(self.ways)
            || !(lines / self.ways).is_power_of_two()
        {
            return Err(DelayError::ShapeViolation {
                structure: "cache",
                shape: "power-of-two set count",
                detail: format!(
                    "{} bytes / {}-byte lines / {} ways",
                    self.bytes, self.line_bytes, self.ways
                ),
            });
        }
        Ok(())
    }
}

/// Cache access delay breakdown, picoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheDelay {
    /// Data-array access (decode + wordline + bitline + sense).
    pub data_path_ps: f64,
    /// Tag-array access plus comparison.
    pub tag_path_ps: f64,
    /// Way-select / output mux.
    pub select_ps: f64,
}

impl CacheDelay {
    /// Computes the access delay.
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails [`CacheParams::validate`]; use
    /// [`CacheDelay::try_compute`] for a checked path.
    pub fn compute(tech: &Technology, params: &CacheParams) -> CacheDelay {
        Self::try_compute(tech, params)
            .unwrap_or_else(|e| panic!("invalid cache geometry: {e}"))
    }

    /// Checked form of [`CacheDelay::compute`]: validates the geometry and
    /// verifies every path delay is a finite non-negative number.
    ///
    /// # Errors
    ///
    /// [`DelayError::OutOfDomain`] / [`DelayError::ShapeViolation`] for a
    /// geometry outside the model (see [`CacheParams::validate`]);
    /// [`DelayError::NonFinite`] if a path delay still came out NaN,
    /// infinite, or negative.
    pub fn try_compute(tech: &Technology, params: &CacheParams) -> Result<CacheDelay, DelayError> {
        params.validate()?;
        // Multi-ported cells, as in the rename model. Large arrays are
        // banked into subarrays of at most 256 rows x 256 columns; what a
        // bigger cache pays is the *global routing* from the banks to the
        // output, which grows with the square root of the capacity.
        let cell = calib::RENAME_CELL_BASE_LAMBDA
            + calib::RENAME_CELL_PER_PORT_LAMBDA * params.ports as f64;
        let bits = (params.bytes * 8) as f64;
        let side = bits.sqrt();
        let rows = side.min(256.0);
        let cols = side.min(256.0);

        let drive = |w: &Wire| {
            calib::R_DRIVER_OHM * w.capacitance_ff(tech) * 1e-3 + w.delay_ps(tech)
        };
        let bitline = Wire::try_new(rows * cell)?;
        let wordline = Wire::try_new(cols * cell)?;
        // Bank-to-output routing spans the physical array edge.
        let routing = Wire::try_new(side * 8.0)?;
        let array_stages = calib::RENAME_DECODE_STAGES
            + calib::RENAME_WORDLINE_STAGES
            + calib::RENAME_BITLINE_STAGES
            + calib::RENAME_SENSE_STAGES;
        let data_path_ps = gates::try_stages_ps(tech, array_stages)?
            + drive(&bitline) * 2.0 // predecode + bitline, as in rename
            + drive(&wordline)
            + drive(&routing);

        // The tag array is narrow (tag_bits per way) but has the same row
        // count per bank; the compare adds log-depth XOR/NOR stages.
        let tag_rows = (params.sets() as f64).min(256.0);
        let tag_bitline = Wire::try_new(tag_rows * cell)?;
        let tag_wordline = Wire::try_new(params.tag_bits() as f64 * cell)?;
        let cmp_stages = 2.0 + gates::try_tree_height(params.tag_bits().max(2), 4)? as f64;
        let tag_path_ps = gates::try_stages_ps(tech, array_stages + cmp_stages)?
            + drive(&tag_bitline) * 2.0
            + drive(&tag_wordline)
            + drive(&routing);

        // Way select: mux fan-in plus the select-signal drive across the
        // ways -- the part of the access that associativity makes slower.
        let select_stages = 1.0
            + gates::try_tree_height(params.ways.max(2), 4)? as f64
            + 0.4 * params.ways as f64;
        let select_ps = gates::try_stages_ps(tech, select_stages)?;

        let d = CacheDelay {
            data_path_ps: ensure_finite("cache", "data_path_ps", data_path_ps)?,
            tag_path_ps: ensure_finite("cache", "tag_path_ps", tag_path_ps)?,
            select_ps: ensure_finite("cache", "select_ps", select_ps)?,
        };
        ensure_finite("cache", "total_ps", d.total_ps())?;
        Ok(d)
    }

    /// Total access time: the slower of the two parallel paths plus the
    /// output select.
    pub fn total_ps(&self) -> f64 {
        self.data_path_ps.max(self.tag_path_ps) + self.select_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureSize;

    fn tech() -> Technology {
        Technology::new(FeatureSize::U018)
    }

    #[test]
    fn table3_geometry() {
        let p = CacheParams::table3_dcache();
        assert_eq!(p.sets(), 512);
        assert_eq!(p.tag_bits(), 32 - 5 - 9);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn grows_with_size_and_associativity() {
        let d = |bytes, ways| {
            CacheDelay::compute(
                &tech(),
                &CacheParams { bytes, ways, line_bytes: 32, ports: 4 },
            )
            .total_ps()
        };
        assert!(d(64 * 1024, 2) > d(32 * 1024, 2), "bigger cache is slower");
        assert!(d(32 * 1024, 8) > d(32 * 1024, 2), "higher associativity is slower");
    }

    #[test]
    fn more_ports_are_slower() {
        let d = |ports| {
            CacheDelay::compute(
                &tech(),
                &CacheParams { ports, ..CacheParams::table3_dcache() },
            )
            .total_ps()
        };
        assert!(d(8) > d(4));
        assert!(d(4) > d(1));
    }

    #[test]
    fn tag_compare_costs_beyond_the_array() {
        let d = CacheDelay::compute(&tech(), &CacheParams::table3_dcache());
        assert!(d.select_ps > 0.0);
        assert!(d.total_ps() >= d.data_path_ps.max(d.tag_path_ps));
        // The tag array is narrower but pays the comparator: at Table 3
        // geometry the two paths are the same order of magnitude.
        let ratio = d.tag_path_ps / d.data_path_ps;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn comparable_to_the_window_logic_scale() {
        // Sanity: a 32 KB cache access lands in the same order of magnitude
        // as the other pipeline structures (it is pipelined in practice).
        let d = CacheDelay::compute(&tech(), &CacheParams::table3_dcache()).total_ps();
        assert!((200.0..3_000.0).contains(&d), "{d}");
    }

    #[test]
    #[should_panic(expected = "invalid cache geometry")]
    fn bad_geometry_panics() {
        let _ = CacheDelay::compute(
            &tech(),
            &CacheParams { bytes: 1000, ways: 3, line_bytes: 24, ports: 1 },
        );
    }

    #[test]
    fn try_compute_rejects_bad_geometry() {
        use crate::error::DelayError;
        let base = CacheParams::table3_dcache();
        // Dimension outside its domain.
        for bad in [
            CacheParams { bytes: 0, ..base },
            CacheParams { ways: 0, ..base },
            CacheParams { ports: 65, ..base },
            CacheParams { line_bytes: 8192, ..base },
        ] {
            assert!(
                matches!(
                    CacheDelay::try_compute(&tech(), &bad),
                    Err(DelayError::OutOfDomain { structure: "cache", .. })
                ),
                "{bad:?} must be out of domain"
            );
        }
        // In-domain dimensions that form an unrealizable set structure.
        for bad in [
            CacheParams { line_bytes: 24, ..base },
            CacheParams { ways: 3, ..base },
            CacheParams { bytes: 16, line_bytes: 32, ways: 1, ports: 1 },
        ] {
            assert!(
                matches!(
                    CacheDelay::try_compute(&tech(), &bad),
                    Err(DelayError::ShapeViolation { structure: "cache", .. })
                ),
                "{bad:?} must be a shape violation"
            );
        }
    }

    #[test]
    fn try_compute_matches_compute_on_valid_params() {
        for bytes in [8 * 1024, 32 * 1024, 256 * 1024] {
            let p = CacheParams { bytes, ..CacheParams::table3_dcache() };
            assert_eq!(
                CacheDelay::try_compute(&tech(), &p).unwrap(),
                CacheDelay::compute(&tech(), &p)
            );
        }
    }
}
