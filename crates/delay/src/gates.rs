//! Gate-stage (logic) delay model.
//!
//! Logic delay is expressed in units of the technology's fan-out-of-4
//! inverter delay (FO4), the standard technology-independent currency for
//! comparing pipeline logic depths. Structures specify their depth in
//! *stages*; a stage is one FO4-equivalent level of static logic. Dynamic
//! gates (the wakeup comparators) and sense amplifiers are expressed as
//! fractional stage counts in [`calib`](crate::calib).

use crate::error::{domain, DelayError};
use crate::Technology;

/// Delay of `stages` FO4-equivalent logic levels, in picoseconds.
///
/// ```
/// use ce_delay::{FeatureSize, Technology};
/// use ce_delay::gates::stages_ps;
///
/// let t = Technology::new(FeatureSize::U018);
/// assert_eq!(stages_ps(&t, 2.0), 2.0 * t.tau_fo4_ps());
/// ```
///
/// # Panics
///
/// Panics if `stages` is outside [`domain::LOGIC_STAGES`] — in release
/// builds too; use [`try_stages_ps`] for a checked path.
pub fn stages_ps(tech: &Technology, stages: f64) -> f64 {
    try_stages_ps(tech, stages).unwrap_or_else(|e| panic!("{e}"))
}

/// Checked form of [`stages_ps`].
///
/// # Errors
///
/// [`DelayError::OutOfDomain`] if `stages` is negative, non-finite, or
/// beyond [`domain::LOGIC_STAGES`].
pub fn try_stages_ps(tech: &Technology, stages: f64) -> Result<f64, DelayError> {
    domain::LOGIC_STAGES.check("gates", "stages", stages)?;
    Ok(stages * tech.tau_fo4_ps())
}

/// Delay of an optimally tapered buffer chain driving a load `cap_ratio`
/// times larger than a minimum inverter input, in picoseconds.
///
/// Classical sizing: a fan-out-of-4 chain needs `log4(cap_ratio)` stages,
/// each costing one FO4 delay. Ratios at or below 1 cost a single stage
/// (you still need a driver).
///
/// # Panics
///
/// Panics if `cap_ratio` is outside [`domain::CAP_RATIO`]; use
/// [`try_buffer_chain_ps`] for a checked path.
pub fn buffer_chain_ps(tech: &Technology, cap_ratio: f64) -> f64 {
    try_buffer_chain_ps(tech, cap_ratio).unwrap_or_else(|e| panic!("{e}"))
}

/// Checked form of [`buffer_chain_ps`].
///
/// # Errors
///
/// [`DelayError::OutOfDomain`] if `cap_ratio` is zero, negative,
/// non-finite, or beyond [`domain::CAP_RATIO`].
pub fn try_buffer_chain_ps(tech: &Technology, cap_ratio: f64) -> Result<f64, DelayError> {
    domain::CAP_RATIO.check("gates", "cap_ratio", cap_ratio)?;
    let stages = if cap_ratio <= 1.0 { 1.0 } else { cap_ratio.log(4.0).max(1.0) };
    Ok(stages * tech.tau_fo4_ps())
}

/// Effective output resistance of a driver sized `size` times a minimum
/// inverter, in ohms.
///
/// The minimum-inverter resistance is chosen so that `R_min · C_min` equals
/// one FO4 delay at each technology; larger drivers scale resistance down
/// linearly.
///
/// # Panics
///
/// Panics if `size` is outside [`domain::DRIVER_SIZE`]; use
/// [`try_driver_resistance_ohm`] for a checked path.
pub fn driver_resistance_ohm(tech: &Technology, size: f64) -> f64 {
    try_driver_resistance_ohm(tech, size).unwrap_or_else(|e| panic!("{e}"))
}

/// Checked form of [`driver_resistance_ohm`].
///
/// # Errors
///
/// [`DelayError::OutOfDomain`] if `size` is below 1 (drivers are at least
/// minimum-size), non-finite, or beyond [`domain::DRIVER_SIZE`].
pub fn try_driver_resistance_ohm(tech: &Technology, size: f64) -> Result<f64, DelayError> {
    domain::DRIVER_SIZE.check("gates", "driver_size", size)?;
    Ok(crate::calib::R_MIN_DRIVER_OHM * tech.tau_fo4_ps() / crate::calib::TAU_FO4_018_PS / size)
}

/// Number of arbitration-tree levels needed to select among `n` requesters
/// with `fanin`-input arbiter cells: `ceil(log_fanin(n))`, minimum 1.
///
/// # Panics
///
/// Panics if `fanin < 2`; use [`try_tree_height`] for a checked path.
pub fn tree_height(n: usize, fanin: usize) -> u32 {
    assert!(fanin >= 2, "arbiter cells need at least two inputs");
    try_tree_height(n, fanin).unwrap_or_else(|e| panic!("{e}"))
}

/// Checked form of [`tree_height`].
///
/// # Errors
///
/// [`DelayError::OutOfDomain`] if `fanin` is outside
/// [`domain::ARBITER_FANIN`].
pub fn try_tree_height(n: usize, fanin: usize) -> Result<u32, DelayError> {
    domain::ARBITER_FANIN.check_usize("gates", "arbiter_fanin", fanin)?;
    if n <= 1 {
        return Ok(1);
    }
    let mut height = 0u32;
    let mut covered = 1usize;
    while covered < n {
        covered = covered.saturating_mul(fanin);
        height += 1;
    }
    Ok(height)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureSize;

    #[test]
    fn stage_delay_scales_with_technology() {
        let [t08, _, t018] = Technology::all();
        assert!(stages_ps(&t08, 3.0) > stages_ps(&t018, 3.0));
    }

    #[test]
    fn buffer_chain_grows_logarithmically() {
        let t = Technology::new(FeatureSize::U018);
        let d16 = buffer_chain_ps(&t, 16.0);
        let d256 = buffer_chain_ps(&t, 256.0);
        assert!((d256 / d16 - 2.0).abs() < 1e-9, "log4(256)/log4(16) = 2");
    }

    #[test]
    fn buffer_chain_minimum_one_stage() {
        let t = Technology::new(FeatureSize::U018);
        assert_eq!(buffer_chain_ps(&t, 0.5), t.tau_fo4_ps());
        assert_eq!(buffer_chain_ps(&t, 2.0), t.tau_fo4_ps());
    }

    #[test]
    fn tree_heights_match_paper_base4() {
        // The paper found 4-input arbiters optimal; selection delay grows
        // with ceil(log4(window)).
        assert_eq!(tree_height(16, 4), 2);
        assert_eq!(tree_height(32, 4), 3);
        assert_eq!(tree_height(64, 4), 3);
        assert_eq!(tree_height(128, 4), 4);
        assert_eq!(tree_height(1, 4), 1);
    }

    #[test]
    fn bigger_drivers_have_lower_resistance() {
        let t = Technology::new(FeatureSize::U018);
        assert!(driver_resistance_ohm(&t, 8.0) < driver_resistance_ohm(&t, 1.0));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tree_height_rejects_unary_fanin() {
        let _ = tree_height(8, 1);
    }

    #[test]
    fn try_paths_reject_garbage_in_release_builds() {
        // These guards used to be debug_assert!s that vanished in release
        // builds; the typed errors must fire regardless of build profile.
        let t = Technology::new(FeatureSize::U018);
        assert!(try_stages_ps(&t, -1.0).is_err());
        assert!(try_stages_ps(&t, f64::NAN).is_err());
        assert!(try_buffer_chain_ps(&t, 0.0).is_err());
        assert!(try_buffer_chain_ps(&t, f64::INFINITY).is_err());
        assert!(try_driver_resistance_ohm(&t, 0.5).is_err());
        assert!(try_tree_height(8, 1).is_err());
        assert!(try_tree_height(8, 0).is_err());
    }

    #[test]
    fn try_paths_agree_with_panicking_paths() {
        let t = Technology::new(FeatureSize::U018);
        assert_eq!(try_stages_ps(&t, 3.0).unwrap(), stages_ps(&t, 3.0));
        assert_eq!(try_buffer_chain_ps(&t, 64.0).unwrap(), buffer_chain_ps(&t, 64.0));
        assert_eq!(
            try_driver_resistance_ohm(&t, 8.0).unwrap(),
            driver_resistance_ohm(&t, 8.0)
        );
        assert_eq!(try_tree_height(64, 4).unwrap(), tree_height(64, 4));
    }
}
