//! Operand bypass (forwarding) delay (paper Section 4.4, Table 1).
//!
//! Bypass delay is dominated by the distributed-RC delay of the result
//! wires that broadcast each functional unit's output to every operand MUX.
//! The wire length is set by the layout: functional units stacked around
//! the register file, whose own height grows with the square of its port
//! count. Because wire RC per λ does not scale, bypass delay is *the same
//! in all three technologies* and grows quadratically with issue width —
//! the ×5.7 blow-up from 4-way to 8-way that motivates clustering.
//!
//! The module also provides the bypass-path count formula from Ahuja et
//! al. that the paper quotes: `I² · 2S + I²` paths for issue width `I` and
//! `S` pipe stages after the first result-producing stage.

use crate::error::{domain, ensure_finite, DelayError};
use crate::wire::Wire;
use crate::{calib, Technology};

/// Parameters of the bypass network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BypassParams {
    /// Machine issue width (functional units stacked along the result bus).
    pub issue_width: usize,
    /// Pipe stages after the first result-producing stage (for the path
    /// count; the paper's single-cycle model uses 1).
    pub pipestages_after_exec: usize,
}

impl BypassParams {
    /// Parameters for a machine of the given issue width with one
    /// post-execute stage.
    pub fn new(issue_width: usize) -> BypassParams {
        BypassParams { issue_width, pipestages_after_exec: 1 }
    }

    /// Result-wire length in λ: the functional-unit stack plus the
    /// register file (whose height grows with the square of its ports).
    pub fn wire_length_lambda(&self) -> f64 {
        let ports = 3.0 * self.issue_width as f64;
        calib::FU_HEIGHT_LAMBDA * self.issue_width as f64
            + calib::REGFILE_BASE_LAMBDA
            + calib::REGFILE_PER_PORT_SQ_LAMBDA * ports * ports
    }

    /// Number of bypass paths in a fully bypassed design with two-input
    /// functional units: `2·S·I² + I²` (Section 4.4).
    pub fn path_count(&self) -> usize {
        let i = self.issue_width;
        2 * self.pipestages_after_exec * i * i + i * i
    }

    /// Validates the parameters against the modeled domains
    /// ([`domain::ISSUE_WIDTH`], [`domain::PIPESTAGES`]).
    ///
    /// # Errors
    ///
    /// [`DelayError::OutOfDomain`] naming the first violated parameter.
    pub fn validate(&self) -> Result<(), DelayError> {
        domain::ISSUE_WIDTH.check_usize("bypass", "issue_width", self.issue_width)?;
        domain::PIPESTAGES.check_usize(
            "bypass",
            "pipestages_after_exec",
            self.pipestages_after_exec,
        )?;
        Ok(())
    }
}

/// Bypass delay result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BypassDelay {
    /// Result-wire length, λ.
    pub wire_length_lambda: f64,
    /// Distributed-RC delay of the result wire, picoseconds.
    pub wire_delay_ps: f64,
}

impl BypassDelay {
    /// Computes the bypass delay for the given technology and parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`BypassParams::validate`] — in
    /// release builds too; use [`BypassDelay::try_compute`] for a checked
    /// path.
    pub fn compute(tech: &Technology, params: &BypassParams) -> BypassDelay {
        assert!(params.issue_width > 0, "issue width must be positive");
        Self::try_compute(tech, params).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked form of [`BypassDelay::compute`]: validates the parameters
    /// and verifies the derived wire length and delay are finite and
    /// non-negative.
    ///
    /// # Errors
    ///
    /// [`DelayError::OutOfDomain`] for parameters outside the modeled
    /// domain; [`DelayError::NonFinite`] if an intermediate still came
    /// out NaN, infinite, or negative.
    pub fn try_compute(tech: &Technology, params: &BypassParams) -> Result<BypassDelay, DelayError> {
        params.validate()?;
        let length = ensure_finite("bypass", "wire_length_lambda", params.wire_length_lambda())?;
        let d = BypassDelay {
            wire_length_lambda: length,
            wire_delay_ps: Wire::try_new(length)?.delay_ps(tech),
        };
        ensure_finite("bypass", "wire_delay_ps", d.wire_delay_ps)?;
        Ok(d)
    }

    /// Total bypass delay, picoseconds.
    pub fn total_ps(&self) -> f64 {
        self.wire_delay_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureSize;

    #[test]
    fn table1_wire_lengths() {
        // Paper Table 1: 20 500 λ at 4-way, 49 000 λ at 8-way.
        let l4 = BypassParams::new(4).wire_length_lambda();
        let l8 = BypassParams::new(8).wire_length_lambda();
        assert!((l4 - 20_500.0).abs() / 20_500.0 < 0.01, "4-way length {l4}");
        assert!((l8 - 49_000.0).abs() / 49_000.0 < 0.01, "8-way length {l8}");
    }

    #[test]
    fn table1_delays() {
        // Paper Table 1: 184.9 ps at 4-way, 1056.4 ps at 8-way.
        let tech = Technology::new(FeatureSize::U018);
        let d4 = BypassDelay::compute(&tech, &BypassParams::new(4)).total_ps();
        let d8 = BypassDelay::compute(&tech, &BypassParams::new(8)).total_ps();
        assert!((d4 - 184.9).abs() / 184.9 < 0.03, "4-way {d4}");
        assert!((d8 - 1056.4).abs() / 1056.4 < 0.03, "8-way {d8}");
        // The headline factor-of-5.7 growth.
        assert!((d8 / d4 - 5.7).abs() < 0.3);
    }

    #[test]
    fn delay_is_identical_across_technologies() {
        // Table 1's note: wire delays are constant under the scaling model.
        for iw in [2, 4, 8, 16] {
            let d: Vec<f64> = Technology::all()
                .iter()
                .map(|t| BypassDelay::compute(t, &BypassParams::new(iw)).total_ps())
                .collect();
            assert_eq!(d[0], d[1]);
            assert_eq!(d[1], d[2]);
        }
    }

    #[test]
    fn quadratic_growth_with_issue_width() {
        let tech = Technology::new(FeatureSize::U018);
        let d = |iw| BypassDelay::compute(&tech, &BypassParams::new(iw)).total_ps();
        // Second difference strictly positive: super-linear growth.
        assert!(d(8) - d(4) > d(4) - d(2));
        assert!(d(16) - d(8) > d(8) - d(4));
    }

    #[test]
    fn path_count_formula() {
        // Section 4.4: I²·2S + I² paths.
        assert_eq!(BypassParams { issue_width: 4, pipestages_after_exec: 1 }.path_count(), 48);
        assert_eq!(BypassParams { issue_width: 8, pipestages_after_exec: 1 }.path_count(), 192);
        assert_eq!(BypassParams { issue_width: 8, pipestages_after_exec: 3 }.path_count(), 448);
    }

    #[test]
    fn try_compute_rejects_out_of_domain_params() {
        let tech = Technology::new(FeatureSize::U018);
        for bad in [
            BypassParams { issue_width: 0, pipestages_after_exec: 1 },
            BypassParams { issue_width: 65, pipestages_after_exec: 1 },
            BypassParams { issue_width: 8, pipestages_after_exec: 65 },
        ] {
            assert!(
                matches!(
                    BypassDelay::try_compute(&tech, &bad),
                    Err(crate::error::DelayError::OutOfDomain { structure: "bypass", .. })
                ),
                "{bad:?} must be refused"
            );
        }
    }

    #[test]
    fn try_compute_matches_compute_on_valid_params() {
        let tech = Technology::new(FeatureSize::U018);
        for iw in [1, 2, 4, 8, 16, 64] {
            let p = BypassParams::new(iw);
            assert_eq!(
                BypassDelay::try_compute(&tech, &p).unwrap(),
                BypassDelay::compute(&tech, &p)
            );
        }
    }

    #[test]
    fn clustered_half_width_bypass_is_much_faster() {
        // Section 5.4's motivation: a 4-way cluster's local bypass is far
        // cheaper than a flat 8-way bypass.
        let tech = Technology::new(FeatureSize::U018);
        let flat8 = BypassDelay::compute(&tech, &BypassParams::new(8)).total_ps();
        let cluster4 = BypassDelay::compute(&tech, &BypassParams::new(4)).total_ps();
        assert!(flat8 / cluster4 > 4.0);
    }
}
