//! Per-stage delay roll-up and clock-period analysis (paper Table 2 and
//! Sections 5.3 / 5.5).

use crate::bypass::{BypassDelay, BypassParams};
use crate::error::{domain, DelayError};
use crate::rename::{RenameDelay, RenameParams};
use crate::restable::{ResTableDelay, ResTableParams};
use crate::select::{SelectDelay, SelectParams};
use crate::wakeup::{WakeupDelay, WakeupParams};
use crate::Technology;
use std::fmt;

/// A named pipeline stage with its critical-path delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageDelay {
    /// The stage this delay belongs to.
    pub stage: Stage,
    /// Critical path through the stage, picoseconds.
    pub delay_ps: f64,
}

/// The pipeline stages whose delays the paper models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Register rename (map table + dependence check).
    Rename,
    /// Window wakeup + selection — atomic, cannot be pipelined apart
    /// without losing back-to-back dependent issue (Section 4.5).
    WakeupSelect,
    /// Operand bypass — likewise atomic.
    Bypass,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Stage::Rename => "rename",
            Stage::WakeupSelect => "wakeup+select",
            Stage::Bypass => "bypass",
        };
        f.write_str(name)
    }
}

/// The Table 2 roll-up: delays of the three modeled stages for one machine
/// configuration in one technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineDelays {
    /// Machine issue width.
    pub issue_width: usize,
    /// Issue-window size.
    pub window_size: usize,
    /// Rename delay, ps.
    pub rename_ps: f64,
    /// Wakeup delay, ps.
    pub wakeup_ps: f64,
    /// Selection delay, ps.
    pub select_ps: f64,
    /// Bypass delay, ps.
    pub bypass_ps: f64,
}

impl PipelineDelays {
    /// Computes all stage delays for a window-based machine.
    ///
    /// # Panics
    ///
    /// Panics if any underlying structure model rejects the parameters;
    /// use [`PipelineDelays::try_compute`] for a checked path.
    pub fn compute(tech: &Technology, issue_width: usize, window_size: usize) -> PipelineDelays {
        Self::try_compute(tech, issue_width, window_size).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked form of [`PipelineDelays::compute`]: every underlying
    /// structure model runs through its own validated `try_compute` path.
    ///
    /// # Errors
    ///
    /// The first [`DelayError`] any structure model reports.
    pub fn try_compute(
        tech: &Technology,
        issue_width: usize,
        window_size: usize,
    ) -> Result<PipelineDelays, DelayError> {
        Ok(PipelineDelays {
            issue_width,
            window_size,
            rename_ps: RenameDelay::try_compute(tech, &RenameParams::new(issue_width))?
                .total_ps(),
            wakeup_ps: WakeupDelay::try_compute(
                tech,
                &WakeupParams::new(issue_width, window_size),
            )?
            .total_ps(),
            select_ps: SelectDelay::try_compute(tech, &SelectParams::new(window_size))?
                .total_ps(),
            bypass_ps: BypassDelay::try_compute(tech, &BypassParams::new(issue_width))?
                .total_ps(),
        })
    }

    /// The atomic window-logic delay (wakeup + select), ps.
    pub fn window_ps(&self) -> f64 {
        self.wakeup_ps + self.select_ps
    }

    /// The stage delays as a list, for tabulation.
    pub fn stages(&self) -> [StageDelay; 3] {
        [
            StageDelay { stage: Stage::Rename, delay_ps: self.rename_ps },
            StageDelay { stage: Stage::WakeupSelect, delay_ps: self.window_ps() },
            StageDelay { stage: Stage::Bypass, delay_ps: self.bypass_ps },
        ]
    }

    /// The slowest stage — the clock-cycle limiter.
    pub fn critical_stage(&self) -> StageDelay {
        let mut worst = self.stages()[0];
        for s in self.stages() {
            if s.delay_ps > worst.delay_ps {
                worst = s;
            }
        }
        worst
    }

    /// Minimum clock period implied by the modeled stages, ps.
    pub fn clock_period_ps(&self) -> f64 {
        self.critical_stage().delay_ps
    }
}

impl PipelineDelays {
    /// How many pipeline stages each structure would need at a target
    /// clock period — the paper's Section 4.5 observation made
    /// computable: rename (and register read, caches, …) can be pipelined
    /// to meet any clock, but wakeup+select and bypass are *atomic*; when
    /// their single-stage delay exceeds the target clock, no legal
    /// pipelining exists and back-to-back dependent execution is lost.
    ///
    /// Returns `(stage, stages_needed, atomic)` triples; for atomic
    /// structures `stages_needed` is still the arithmetic ceiling, so a
    /// value above 1 flags a clock the structure cannot meet.
    ///
    /// # Panics
    ///
    /// Panics unless `clock_ps` is positive; use
    /// [`PipelineDelays::try_stages_at`] for a checked path.
    pub fn stages_at(&self, clock_ps: f64) -> [(Stage, u32, bool); 3] {
        assert!(clock_ps > 0.0, "clock period must be positive");
        self.try_stages_at(clock_ps).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked form of [`PipelineDelays::stages_at`]: validates the target
    /// clock against [`domain::CLOCK_PS`].
    ///
    /// # Errors
    ///
    /// [`DelayError::OutOfDomain`] when `clock_ps` is non-finite or
    /// outside the modeled range.
    pub fn try_stages_at(&self, clock_ps: f64) -> Result<[(Stage, u32, bool); 3], DelayError> {
        domain::CLOCK_PS.check("pipeline", "clock_ps", clock_ps)?;
        // Epsilon-tolerant ceiling: a clock that exactly divides a stage
        // delay produces ratios like 3.0000000000000004 from the division
        // rounding, and a bare `ceil` would report 4 stages where 3 fit.
        // A ratio within one part in 10^9 of an integer is that integer —
        // far wider than f64 division noise, far tighter than any real
        // stage-count margin.
        let need = |d: f64| {
            let ratio = d / clock_ps;
            let nearest = ratio.round();
            let stages = if nearest >= 1.0 && (ratio - nearest).abs() <= nearest * 1e-9 {
                nearest
            } else {
                ratio.ceil()
            };
            stages.max(1.0) as u32
        };
        Ok([
            (Stage::Rename, need(self.rename_ps), false),
            (Stage::WakeupSelect, need(self.window_ps()), true),
            (Stage::Bypass, need(self.bypass_ps), true),
        ])
    }

    /// The fastest clock this machine can run without pipelining any
    /// atomic structure: the larger of wakeup+select and bypass.
    pub fn atomic_limit_ps(&self) -> f64 {
        self.window_ps().max(self.bypass_ps)
    }
}

/// Clock-period comparison between the conventional window-based machine
/// and the dependence-based machine (Sections 5.3 and 5.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockComparison {
    /// Window-based machine clock period: its wakeup+select delay, ps.
    pub window_clock_ps: f64,
    /// Dependence-based machine clock period, ps: limited by the per-cluster
    /// window logic (a cluster behaves like a 4-way, 32-entry machine).
    pub dependence_clock_ps: f64,
    /// Reservation-table + select delay of the dependence-based design, ps
    /// (what the FIFO-head wakeup actually costs).
    pub dependence_window_ps: f64,
    /// Rename delay at the cluster width, ps — the stage that becomes
    /// critical once window logic is reduced.
    pub rename_ps: f64,
}

impl ClockComparison {
    /// Compares an `issue_width`-wide window machine with window size
    /// `window_size` against a clustered dependence-based machine built
    /// from `clusters` clusters of width `issue_width / clusters`.
    ///
    /// The paper's 8-way comparison (Section 5.5): the dependence-based
    /// clock is *at least* as fast as a 4-way, 32-entry window machine,
    /// i.e. `clk_dep / clk_win = window(8,64) / window(4,32) ≈ 1.25` at
    /// 0.18 µm.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero or does not divide `issue_width`, or
    /// if any structure model rejects the derived per-cluster parameters;
    /// use [`ClockComparison::try_compute`] for a checked path.
    pub fn compute(
        tech: &Technology,
        issue_width: usize,
        window_size: usize,
        clusters: usize,
    ) -> ClockComparison {
        assert!(clusters > 0, "need at least one cluster");
        assert_eq!(issue_width % clusters, 0, "clusters must divide issue width");
        Self::try_compute(tech, issue_width, window_size, clusters)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked form of [`ClockComparison::compute`]: validates the cluster
    /// count against [`domain::CLUSTERS`], requires it to divide the issue
    /// width and leave at least one window entry per cluster, and runs
    /// every structure model through its validated path.
    ///
    /// # Errors
    ///
    /// [`DelayError::OutOfDomain`] for a cluster count outside the domain
    /// or incompatible with the machine shape, or the first error any
    /// structure model reports.
    pub fn try_compute(
        tech: &Technology,
        issue_width: usize,
        window_size: usize,
        clusters: usize,
    ) -> Result<ClockComparison, DelayError> {
        domain::CLUSTERS.check_usize("pipeline", "clusters", clusters)?;
        if !issue_width.is_multiple_of(clusters) || window_size / clusters == 0 {
            return Err(DelayError::OutOfDomain {
                structure: "pipeline",
                param: "clusters",
                value: clusters as f64,
                min: 1.0,
                max: issue_width.min(window_size) as f64,
            });
        }
        let cluster_width = issue_width / clusters;
        let cluster_window = window_size / clusters;

        let win = PipelineDelays::try_compute(tech, issue_width, window_size)?;
        let per_cluster = PipelineDelays::try_compute(tech, cluster_width, cluster_window)?;

        let restable =
            ResTableDelay::try_compute(tech, &ResTableParams::new(issue_width))?.total_ps();
        // Selection in the dependence-based design only arbitrates over the
        // FIFO heads (8 in the paper's configuration).
        let head_select =
            SelectDelay::try_compute(tech, &SelectParams::new(8.max(cluster_width)))?
                .total_ps();

        Ok(ClockComparison {
            window_clock_ps: win.window_ps(),
            dependence_clock_ps: per_cluster.window_ps(),
            dependence_window_ps: restable + head_select,
            rename_ps: per_cluster.rename_ps,
        })
    }

    /// Conservative clock-speed advantage of the dependence-based design:
    /// `clk_dep / clk_win` with the dependence clock pinned to the
    /// per-cluster window logic (the paper's ≈1.25 at 0.18 µm).
    pub fn conservative_speedup(&self) -> f64 {
        self.window_clock_ps / self.dependence_clock_ps
    }

    /// Optimistic clock improvement if window logic shrinks so far that
    /// rename becomes critical (the paper's "as much as 39 %" for 4-way at
    /// 0.18 µm): `1 − rename / window`.
    pub fn optimistic_improvement(&self) -> f64 {
        1.0 - self.rename_ps / self.dependence_clock_ps
    }

    /// Checked form of [`ClockComparison::conservative_speedup`] for sweep
    /// and explorer code: a degenerate comparison (zero, negative, or
    /// non-finite clock on either side — e.g. an extrapolated point whose
    /// atomic limit collapsed) becomes a [`DelayError`] instead of a
    /// silent `inf`/`NaN`/negative ratio flowing into a score.
    ///
    /// # Errors
    ///
    /// [`DelayError::NonFinite`] naming the degenerate quantity.
    pub fn try_conservative_speedup(&self) -> Result<f64, DelayError> {
        ensure_positive("pipeline", "window_clock_ps", self.window_clock_ps)?;
        ensure_positive("pipeline", "dependence_clock_ps", self.dependence_clock_ps)?;
        crate::error::ensure_finite(
            "pipeline",
            "conservative_speedup",
            self.window_clock_ps / self.dependence_clock_ps,
        )
    }

    /// Checked form of [`ClockComparison::optimistic_improvement`]: errors
    /// when the comparison is degenerate *or* the "improvement" comes out
    /// negative (rename slower than the dependence-based clock — the
    /// bypass-dominated corner where the optimistic model stops meaning
    /// anything), instead of silently reporting a negative gain.
    ///
    /// # Errors
    ///
    /// [`DelayError::NonFinite`] naming the degenerate quantity.
    pub fn try_optimistic_improvement(&self) -> Result<f64, DelayError> {
        ensure_positive("pipeline", "rename_ps", self.rename_ps)?;
        ensure_positive("pipeline", "dependence_clock_ps", self.dependence_clock_ps)?;
        crate::error::ensure_finite(
            "pipeline",
            "optimistic_improvement",
            1.0 - self.rename_ps / self.dependence_clock_ps,
        )
    }
}

/// Requires a strictly positive, finite delay; reports anything else as
/// [`DelayError::NonFinite`] (the taxonomy's "model produced garbage"
/// bucket covers zero and negative delays too).
fn ensure_positive(
    structure: &'static str,
    stage: &'static str,
    value: f64,
) -> Result<f64, DelayError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(DelayError::NonFinite { structure, stage, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureSize;

    /// Paper Table 2, for reference in assertions:
    /// (tech, issue, window, rename, wakeup+select, bypass)
    const TABLE2: [(FeatureSize, usize, usize, f64, f64, f64); 6] = [
        (FeatureSize::U080, 4, 32, 1577.9, 2903.7, 184.9),
        (FeatureSize::U080, 8, 64, 1710.5, 3369.4, 1056.4),
        (FeatureSize::U035, 4, 32, 627.2, 1248.4, 184.9),
        (FeatureSize::U035, 8, 64, 726.6, 1484.8, 1056.4),
        (FeatureSize::U018, 4, 32, 351.0, 578.0, 184.9),
        (FeatureSize::U018, 8, 64, 427.9, 724.0, 1056.4),
    ];

    #[test]
    fn table2_within_tolerance() {
        for (feature, iw, w, rename, window, bypass) in TABLE2 {
            let tech = Technology::new(feature);
            let d = PipelineDelays::compute(&tech, iw, w);
            let check = |got: f64, want: f64, what: &str, tol: f64| {
                assert!(
                    (got - want).abs() / want < tol,
                    "{feature:?} {iw}-way {what}: got {got:.1}, want {want:.1}"
                );
            };
            check(d.rename_ps, rename, "rename", 0.15);
            check(d.window_ps(), window, "window", 0.15);
            check(d.bypass_ps, bypass, "bypass", 0.03);
        }
    }

    #[test]
    fn window_logic_is_critical_for_4way() {
        // Table 2 discussion: for the 4-way machine the window logic has
        // the greatest delay of all structures.
        for tech in Technology::all() {
            let d = PipelineDelays::compute(&tech, 4, 32);
            assert_eq!(d.critical_stage().stage, Stage::WakeupSelect, "{tech}");
        }
    }

    #[test]
    fn bypass_overtakes_window_at_8way_only_in_relative_terms() {
        // Table 2 discussion: at 8-way the bypass delay grows by over 5×;
        // the paper's exact numbers still leave wakeup+select larger, but
        // bypass is now the same order of magnitude.
        let tech = Technology::new(FeatureSize::U018);
        let d4 = PipelineDelays::compute(&tech, 4, 32);
        let d8 = PipelineDelays::compute(&tech, 8, 64);
        assert!(d8.bypass_ps / d4.bypass_ps > 5.0);
        assert!(d8.bypass_ps > d8.rename_ps, "bypass overtakes rename at 8-way");
    }

    #[test]
    fn rename_is_39_percent_faster_than_window_logic_4way() {
        // Section 5.3: "the dependence-based microarchitecture can improve
        // the clock period by as much as (an admittedly optimistic) 39 % in
        // 0.18 µm technology" — rename vs. window delay at 4-way.
        let tech = Technology::new(FeatureSize::U018);
        let d = PipelineDelays::compute(&tech, 4, 32);
        let improvement = 1.0 - d.rename_ps / d.window_ps();
        assert!((improvement - 0.39).abs() < 0.08, "improvement {improvement:.3}");
    }

    #[test]
    fn clock_ratio_is_about_1_25_at_018() {
        // Section 5.5: clk_dep / clk_win ≈ 1.25 at 0.18 µm for the 2×4-way
        // machine vs. the 8-way, 64-entry window machine.
        let tech = Technology::new(FeatureSize::U018);
        let cmp = ClockComparison::compute(&tech, 8, 64, 2);
        let ratio = cmp.conservative_speedup();
        assert!((ratio - 1.25).abs() < 0.10, "ratio {ratio:.3}");
    }

    #[test]
    fn dependence_window_is_cheaper_than_cluster_window() {
        // The reservation-table + head-select path must undercut even the
        // per-cluster CAM window, or the whole design makes no sense.
        for tech in Technology::all() {
            let cmp = ClockComparison::compute(&tech, 8, 64, 2);
            assert!(cmp.dependence_window_ps < cmp.dependence_clock_ps, "{tech}");
        }
    }

    #[test]
    fn critical_stage_reports_largest() {
        let tech = Technology::new(FeatureSize::U018);
        let d = PipelineDelays::compute(&tech, 8, 64);
        let crit = d.critical_stage();
        for s in d.stages() {
            assert!(crit.delay_ps >= s.delay_ps);
        }
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn mismatched_cluster_count_panics() {
        let tech = Technology::new(FeatureSize::U018);
        let _ = ClockComparison::compute(&tech, 8, 64, 3);
    }

    #[test]
    fn stages_at_identifies_atomic_violations() {
        let tech = Technology::new(FeatureSize::U018);
        let d = PipelineDelays::compute(&tech, 8, 64);
        // At a clock equal to the rename delay, rename needs one stage and
        // the atomic structures overflow.
        let stages = d.stages_at(d.rename_ps);
        let rename = stages.iter().find(|(s, _, _)| *s == Stage::Rename).unwrap();
        assert_eq!(rename.1, 1);
        let window = stages.iter().find(|(s, _, _)| *s == Stage::WakeupSelect).unwrap();
        assert!(window.1 > 1, "window logic cannot meet a rename-limited clock");
        assert!(window.2, "and it is atomic");
        // At a generous clock everything fits in one stage.
        for (_, n, _) in d.stages_at(10_000.0) {
            assert_eq!(n, 1);
        }
    }

    /// Regression test: a clock that *exactly divides* a stage delay must
    /// need exactly that many stages. The old bare `(d / clock).ceil()`
    /// turned `d / (d / 3)` = 3.0000000000000004 into 4 stages from FP
    /// division noise — and the explorer sweeps precisely these
    /// exact-divisor boundaries when it pipelines rename to a candidate
    /// clock.
    #[test]
    fn stages_at_exact_divisor_clocks_do_not_round_up() {
        for tech in Technology::all() {
            for (iw, win) in [(4usize, 32usize), (8, 64)] {
                let d = PipelineDelays::compute(&tech, iw, win);
                for k in 1..=12u32 {
                    for (stage, delay) in [
                        (Stage::Rename, d.rename_ps),
                        (Stage::WakeupSelect, d.window_ps()),
                        (Stage::Bypass, d.bypass_ps),
                    ] {
                        let clock = delay / f64::from(k);
                        let stages = d.try_stages_at(clock).unwrap();
                        let (_, n, _) =
                            stages.iter().find(|(s, _, _)| *s == stage).unwrap();
                        assert_eq!(
                            *n, k,
                            "{tech} {iw}-way {stage}: clock {clock:.6} = delay/{k} \
                             needs {n} stages, want exactly {k}"
                        );
                    }
                }
            }
        }
    }

    /// The tolerance is for FP noise only: a clock genuinely 1% short of
    /// an exact divisor still rounds up.
    #[test]
    fn stages_at_near_miss_clocks_still_round_up() {
        let tech = Technology::new(FeatureSize::U018);
        let d = PipelineDelays::compute(&tech, 8, 64);
        let clock = d.window_ps() / 3.0 * 0.99;
        let stages = d.try_stages_at(clock).unwrap();
        let (_, n, _) =
            stages.iter().find(|(s, _, _)| *s == Stage::WakeupSelect).unwrap();
        assert_eq!(*n, 4, "a real shortfall must still cost a stage");
    }

    /// The checked comparison metrics reproduce the paper anchors exactly
    /// where the unchecked ones do (§5.5's ≈1.25 ratio, §5.3's ≈0.39
    /// optimistic improvement)…
    #[test]
    fn checked_comparison_metrics_reproduce_the_paper_anchors() {
        let tech = Technology::new(FeatureSize::U018);
        let cmp = ClockComparison::compute(&tech, 8, 64, 2);
        let ratio = cmp.try_conservative_speedup().unwrap();
        assert_eq!(ratio, cmp.conservative_speedup());
        assert!((ratio - 1.25).abs() < 0.10, "ratio {ratio:.3}");

        // §5.3 compares the 4-way machine's rename against its window
        // logic; express it as a ClockComparison whose dependence clock is
        // the 4-way window.
        let d4 = PipelineDelays::compute(&tech, 4, 32);
        let cmp4 = ClockComparison {
            window_clock_ps: d4.window_ps(),
            dependence_clock_ps: d4.window_ps(),
            dependence_window_ps: 0.0,
            rename_ps: d4.rename_ps,
        };
        let improvement = cmp4.try_optimistic_improvement().unwrap();
        assert_eq!(improvement, cmp4.optimistic_improvement());
        assert!((improvement - 0.39).abs() < 0.08, "improvement {improvement:.3}");
    }

    /// …and refuse the degenerate points the unchecked ones silently let
    /// through: zero/negative/non-finite clocks yield `inf`, `NaN`, or a
    /// negative "speedup" from the raw arithmetic, and a bypass-dominated
    /// atomic limit makes the optimistic improvement negative.
    #[test]
    fn checked_comparison_metrics_reject_degenerate_points() {
        let good = ClockComparison {
            window_clock_ps: 724.0,
            dependence_clock_ps: 578.0,
            dependence_window_ps: 400.0,
            rename_ps: 351.0,
        };
        assert!(good.try_conservative_speedup().is_ok());
        assert!(good.try_optimistic_improvement().is_ok());

        for bad_clock in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let cmp = ClockComparison { dependence_clock_ps: bad_clock, ..good };
            // The unchecked path hands back inf / a negative ratio / NaN…
            let raw = cmp.conservative_speedup();
            assert!(!raw.is_finite() || raw <= 0.0 || raw.is_nan() || bad_clock.is_nan());
            // …the checked path names the degenerate quantity instead.
            assert!(matches!(
                cmp.try_conservative_speedup(),
                Err(DelayError::NonFinite { structure: "pipeline", .. })
            ));
            assert!(cmp.try_optimistic_improvement().is_err());
        }

        // Bypass-dominated corner: rename slower than the dependence
        // clock. The unchecked improvement goes negative; checked errors.
        let inverted = ClockComparison { rename_ps: 600.0, dependence_clock_ps: 578.0, ..good };
        assert!(inverted.optimistic_improvement() < 0.0);
        assert!(matches!(
            inverted.try_optimistic_improvement(),
            Err(DelayError::NonFinite { stage: "optimistic_improvement", .. })
        ));
    }

    #[test]
    fn atomic_limit_is_max_of_window_and_bypass() {
        let tech = Technology::new(FeatureSize::U018);
        let d4 = PipelineDelays::compute(&tech, 4, 32);
        assert_eq!(d4.atomic_limit_ps(), d4.window_ps(), "4-way: window logic limits");
        let d8 = PipelineDelays::compute(&tech, 8, 64);
        assert_eq!(d8.atomic_limit_ps(), d8.bypass_ps, "8-way: bypass wires limit");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn stages_at_rejects_zero_clock() {
        let tech = Technology::new(FeatureSize::U018);
        let _ = PipelineDelays::compute(&tech, 4, 32).stages_at(0.0);
    }

    #[test]
    fn try_compute_rejects_out_of_domain_machines() {
        let tech = Technology::new(FeatureSize::U018);
        assert!(matches!(
            PipelineDelays::try_compute(&tech, 0, 32),
            Err(DelayError::OutOfDomain { .. })
        ));
        assert!(matches!(
            PipelineDelays::try_compute(&tech, 4, 0),
            Err(DelayError::OutOfDomain { .. })
        ));
        // A cluster count that divides the width but leaves no window.
        assert!(matches!(
            ClockComparison::try_compute(&tech, 8, 4, 8),
            Err(DelayError::OutOfDomain { structure: "pipeline", .. })
        ));
        assert!(matches!(
            ClockComparison::try_compute(&tech, 8, 64, 3),
            Err(DelayError::OutOfDomain { structure: "pipeline", .. })
        ));
        assert!(matches!(
            ClockComparison::try_compute(&tech, 8, 64, 0),
            Err(DelayError::OutOfDomain { structure: "pipeline", .. })
        ));
    }

    #[test]
    fn try_paths_match_panicking_paths() {
        let tech = Technology::new(FeatureSize::U018);
        let d = PipelineDelays::compute(&tech, 8, 64);
        assert_eq!(PipelineDelays::try_compute(&tech, 8, 64).unwrap(), d);
        assert_eq!(d.try_stages_at(500.0).unwrap(), d.stages_at(500.0));
        assert!(matches!(
            d.try_stages_at(0.0),
            Err(DelayError::OutOfDomain { structure: "pipeline", .. })
        ));
        assert!(d.try_stages_at(f64::NAN).is_err());
        assert_eq!(
            ClockComparison::try_compute(&tech, 8, 64, 2).unwrap(),
            ClockComparison::compute(&tech, 8, 64, 2)
        );
    }

    #[test]
    fn stage_display_names() {
        assert_eq!(Stage::Rename.to_string(), "rename");
        assert_eq!(Stage::WakeupSelect.to_string(), "wakeup+select");
        assert_eq!(Stage::Bypass.to_string(), "bypass");
    }
}
