//! # ce-delay — analytical delay models for superscalar pipeline structures
//!
//! A Rust reimplementation of the circuit-delay methodology of Palacharla,
//! Jouppi & Smith, *Complexity-Effective Superscalar Processors* (ISCA 1997)
//! and its companion technical report *Quantifying the Complexity of
//! Superscalar Processors* (UW-Madison CS-TR-96-1328).
//!
//! The paper measures the complexity of a microarchitecture as the critical
//! path delay through four structures, each modeled here as a function of
//! **issue width**, **window size**, and **CMOS feature size**:
//!
//! | Module | Structure | Paper artifact |
//! |---|---|---|
//! | [`rename`] | register rename map table (RAM & CAM schemes) | Fig. 3 |
//! | [`wakeup`] | issue-window tag broadcast/match CAM | Figs. 5–6 |
//! | [`select`] | tree of 4-input arbiters | Fig. 8 |
//! | [`bypass`] | operand result wires | Table 1 |
//! | [`restable`] | dependence-based reservation table | Table 4 |
//! | [`pipeline`] | per-stage roll-up and clock estimation | Table 2 |
//!
//! ## Substitution for Hspice
//!
//! The original work sized transistors by hand and ran Hspice on extracted
//! layouts. This crate substitutes a structural-analytical model: wire
//! lengths are derived from layout geometry expressed in λ (half the feature
//! size), wires contribute distributed-RC (Elmore) delay, and logic
//! contributes technology-scaled gate-stage delay. Per-technology constants
//! live in [`calib`] and are calibrated against the delay values printed in
//! the paper; the growth *shapes* — linear, quadratic, logarithmic — come
//! from the structural equations, not from the calibration.
//!
//! ## Validation
//!
//! Every model pairs its panicking `compute` with a checked `try_compute`
//! returning [`DelayError`] ([`error`] documents the taxonomy and the
//! parameter domains); the [`anchors`] module embeds the paper's printed
//! Table 1/2/4 and Figure 3/5/6/8 values with per-anchor tolerances so
//! calibration drift and shape regressions are detectable mechanically
//! (the `delaycheck` binary in `ce-bench` runs the full campaign).
//!
//! ## Example
//!
//! ```
//! use ce_delay::{FeatureSize, Technology};
//! use ce_delay::wakeup::{WakeupDelay, WakeupParams};
//!
//! let tech = Technology::new(FeatureSize::U018);
//! let fast = WakeupDelay::compute(&tech, &WakeupParams::new(4, 32));
//! let slow = WakeupDelay::compute(&tech, &WakeupParams::new(8, 64));
//! assert!(slow.total_ps() > fast.total_ps());
//! ```

pub mod anchors;
pub mod bypass;
pub mod cache;
pub mod calib;
pub mod error;
pub mod gates;
pub mod machine_clock;
pub mod pipeline;
pub mod regfile;
pub mod rename;
pub mod restable;
pub mod select;
pub mod technology;
pub mod wakeup;
pub mod wire;

pub use error::DelayError;
pub use machine_clock::{MachineClock, MachineParams, SchedulerGeometry};
pub use pipeline::{PipelineDelays, StageDelay};
pub use technology::{FeatureSize, Technology};
