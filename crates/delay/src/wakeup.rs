//! Issue-window wakeup logic delay (paper Section 4.2, Figures 5 and 6).
//!
//! The window is a CAM array with one instruction per entry. Each cycle up
//! to `issue_width` result tags are broadcast down tag lines that span the
//! whole window; every entry compares the tags against its two operand tags
//! and ORs the match lines into its ready flags. The delay decomposes as
//!
//! `T_wakeup = T_tag_drive + T_tag_match + T_match_OR`
//!
//! * **tag drive** — buffer + tag-line wire. The line's length is
//!   `window_size × cell_height`, and cell height grows with issue width
//!   (more match lines per entry), so this term is *quadratic in window
//!   size* with an issue-width-dependent coefficient — the paper's key
//!   scaling result.
//! * **tag match** — the dynamic comparator pulldown; match-line length
//!   grows linearly with issue width.
//! * **match OR** — pure logic; fan-in grows with issue width.

use crate::error::{domain, ensure_finite, DelayError};
use crate::wire::Wire;
use crate::{calib, gates, Technology};

/// Parameters of the wakeup logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WakeupParams {
    /// Result tags broadcast per cycle (= issue width).
    pub issue_width: usize,
    /// Number of window entries spanned by the tag lines.
    pub window_size: usize,
}

impl WakeupParams {
    /// Creates wakeup parameters.
    pub fn new(issue_width: usize, window_size: usize) -> WakeupParams {
        WakeupParams { issue_width, window_size }
    }

    /// CAM cell height in λ: grows with one match line per broadcast tag.
    pub fn cell_height_lambda(&self) -> f64 {
        calib::WAKEUP_CELL_BASE_LAMBDA
            + calib::WAKEUP_CELL_PER_TAG_LAMBDA * self.issue_width as f64
    }

    /// Tag-line length in λ.
    pub fn tag_line_lambda(&self) -> f64 {
        self.window_size as f64 * self.cell_height_lambda()
    }

    /// Validates the parameters against the modeled domains
    /// ([`domain::ISSUE_WIDTH`], [`domain::WINDOW_SIZE`]).
    ///
    /// # Errors
    ///
    /// [`DelayError::OutOfDomain`] naming the first violated parameter.
    pub fn validate(&self) -> Result<(), DelayError> {
        domain::ISSUE_WIDTH.check_usize("wakeup", "issue_width", self.issue_width)?;
        domain::WINDOW_SIZE.check_usize("wakeup", "window_size", self.window_size)?;
        Ok(())
    }
}

/// Delay breakdown of the wakeup logic, all in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WakeupDelay {
    /// Time for the buffers to drive the result tags down the tag lines.
    pub tag_drive_ps: f64,
    /// Time for a mismatching comparator stack to pull its match line low.
    pub tag_match_ps: f64,
    /// Time to OR the individual match lines into the ready flags.
    pub match_or_ps: f64,
}

impl WakeupDelay {
    /// Computes the wakeup delay for the given technology and parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`WakeupParams::validate`] — in
    /// release builds too; use [`WakeupDelay::try_compute`] for a checked
    /// path.
    pub fn compute(tech: &Technology, params: &WakeupParams) -> WakeupDelay {
        assert!(params.issue_width > 0, "issue width must be positive");
        assert!(params.window_size > 0, "window size must be positive");
        Self::try_compute(tech, params).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked form of [`WakeupDelay::compute`]: validates the parameters
    /// and verifies every stage-level intermediate is a finite
    /// non-negative delay.
    ///
    /// # Errors
    ///
    /// [`DelayError::OutOfDomain`] for parameters outside the modeled
    /// domain; [`DelayError::NonFinite`] if a component still came out
    /// NaN, infinite, or negative.
    pub fn try_compute(tech: &Technology, params: &WakeupParams) -> Result<WakeupDelay, DelayError> {
        params.validate()?;
        let entries = params.window_size as f64;
        let tag_line = Wire::new(params.tag_line_lambda());

        // Comparator gate capacitance scales with λ (transistors shrink).
        let cmp_cap_ff = calib::CMP_INPUT_CAP_018_FF * tech.feature().lambda_um() / 0.09;
        // Each entry hangs two operand comparators on every tag line.
        let cmp_load_ff = 2.0 * entries * cmp_cap_ff;

        let tag_drive_ps = gates::stages_ps(tech, calib::TAG_DRIVE_STAGES)
            + calib::R_DRIVER_OHM * (tag_line.capacitance_ff(tech) + cmp_load_ff) * 1e-3
            + tag_line.delay_ps(tech);

        // Match line spans the comparator stacks for all broadcast tags.
        let matchline_lambda = calib::TAG_WIDTH_BITS as f64
            * (calib::MATCHLINE_BASE_LAMBDA
                + calib::MATCHLINE_PER_TAG_LAMBDA * params.issue_width as f64);
        let matchline = Wire::new(matchline_lambda);
        let tag_match_ps = gates::stages_ps(tech, calib::TAG_MATCH_STAGES)
            + calib::R_PULLDOWN_OHM * matchline.capacitance_ff(tech) * 1e-3
            + matchline.delay_ps(tech);

        let or_stages = calib::MATCH_OR_BASE_STAGES
            + calib::MATCH_OR_STAGES_PER_LOG2 * (params.issue_width as f64).log2();
        let match_or_ps = gates::try_stages_ps(tech, or_stages)?;

        ensure_finite("wakeup", "tag_drive_ps", tag_drive_ps)?;
        ensure_finite("wakeup", "tag_match_ps", tag_match_ps)?;
        ensure_finite("wakeup", "match_or_ps", match_or_ps)?;
        let d = WakeupDelay { tag_drive_ps, tag_match_ps, match_or_ps };
        ensure_finite("wakeup", "total_ps", d.total_ps())?;
        Ok(d)
    }

    /// Total wakeup delay, picoseconds.
    pub fn total_ps(&self) -> f64 {
        self.tag_drive_ps + self.tag_match_ps + self.match_or_ps
    }

    /// Fraction of the total contributed by the wire-bound components
    /// (tag drive + tag match) — the quantity Figure 6 tracks across
    /// technology generations.
    pub fn wire_bound_fraction(&self) -> f64 {
        (self.tag_drive_ps + self.tag_match_ps) / self.total_ps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureSize;

    fn wakeup(tech: &Technology, iw: usize, w: usize) -> WakeupDelay {
        WakeupDelay::compute(tech, &WakeupParams::new(iw, w))
    }

    #[test]
    fn monotonic_in_window_size_and_issue_width() {
        let tech = Technology::new(FeatureSize::U018);
        for iw in [2, 4, 8] {
            let mut last = 0.0;
            for w in [8, 16, 24, 32, 40, 48, 56, 64] {
                let d = wakeup(&tech, iw, w).total_ps();
                assert!(d > last, "{iw}-way, window {w}");
                last = d;
            }
        }
        for w in [16, 32, 64] {
            assert!(wakeup(&tech, 2, w).total_ps() < wakeup(&tech, 4, w).total_ps());
            assert!(wakeup(&tech, 4, w).total_ps() < wakeup(&tech, 8, w).total_ps());
        }
    }

    #[test]
    fn quadratic_window_dependence_visible_at_8_way() {
        // Figure 5: the delay-vs-window curve bends upward, clearly at
        // 8-way. Second difference of tag drive must be positive and larger
        // at 8-way than at 2-way.
        let tech = Technology::new(FeatureSize::U018);
        let second_diff = |iw: usize| {
            let d32 = wakeup(&tech, iw, 32).tag_drive_ps;
            let d48 = wakeup(&tech, iw, 48).tag_drive_ps;
            let d64 = wakeup(&tech, iw, 64).tag_drive_ps;
            (d64 - d48) - (d48 - d32)
        };
        assert!(second_diff(8) > 0.0);
        assert!(second_diff(8) > second_diff(2));
    }

    #[test]
    fn issue_width_matters_more_than_window_size() {
        // Section 4.2.3: issue width increases all three components; window
        // size only lengthens tag drive (and slightly tag match).
        let tech = Technology::new(FeatureSize::U018);
        let base = wakeup(&tech, 4, 32).total_ps();
        let wider = wakeup(&tech, 8, 32).total_ps();
        let deeper = wakeup(&tech, 4, 64).total_ps();
        assert!(wider - base > deeper - base);
    }

    #[test]
    fn growth_with_issue_width_at_window_64() {
        // Paper: +34 % from 2- to 4-way and +46 % from 4- to 8-way at a
        // 64-entry window. Model shapes must preserve the ordering and
        // rough scale.
        let tech = Technology::new(FeatureSize::U018);
        let d2 = wakeup(&tech, 2, 64).total_ps();
        let d4 = wakeup(&tech, 4, 64).total_ps();
        let d8 = wakeup(&tech, 8, 64).total_ps();
        let g24 = d4 / d2 - 1.0;
        let g48 = d8 / d4 - 1.0;
        assert!(g48 > g24, "4→8 growth ({g48:.2}) must exceed 2→4 growth ({g24:.2})");
        assert!((0.05..0.60).contains(&g24), "2→4 growth {g24:.2}");
        assert!((0.15..0.70).contains(&g48), "4→8 growth {g48:.2}");
    }

    #[test]
    fn wire_fraction_increases_as_feature_shrinks() {
        // Figure 6: tag drive + tag match go from 52 % to 65 % of the total
        // as features shrink from 0.8 µm to 0.18 µm (8-way, 64 entries).
        let frac = |f: FeatureSize| {
            wakeup(&Technology::new(f), 8, 64).wire_bound_fraction()
        };
        let f080 = frac(FeatureSize::U080);
        let f035 = frac(FeatureSize::U035);
        let f018 = frac(FeatureSize::U018);
        assert!(f080 < f035 && f035 < f018, "{f080:.2} {f035:.2} {f018:.2}");
    }

    #[test]
    fn all_components_positive() {
        let tech = Technology::new(FeatureSize::U035);
        let d = wakeup(&tech, 4, 32);
        assert!(d.tag_drive_ps > 0.0 && d.tag_match_ps > 0.0 && d.match_or_ps > 0.0);
        assert!(d.total_ps() > d.tag_drive_ps);
    }

    #[test]
    #[should_panic(expected = "window size")]
    fn zero_window_panics() {
        let tech = Technology::new(FeatureSize::U018);
        let _ = wakeup(&tech, 4, 0);
    }

    #[test]
    fn try_compute_rejects_out_of_domain_params() {
        let tech = Technology::new(FeatureSize::U018);
        for (iw, w) in [(0, 32), (4, 0), (65, 32), (4, 2048)] {
            assert!(
                matches!(
                    WakeupDelay::try_compute(&tech, &WakeupParams::new(iw, w)),
                    Err(DelayError::OutOfDomain { structure: "wakeup", .. })
                ),
                "({iw}, {w}) must be refused"
            );
        }
    }

    #[test]
    fn try_compute_matches_compute_on_valid_params() {
        for tech in Technology::all() {
            for (iw, w) in [(1, 1), (2, 16), (4, 32), (8, 64), (16, 256)] {
                let p = WakeupParams::new(iw, w);
                assert_eq!(WakeupDelay::try_compute(&tech, &p).unwrap(), wakeup(&tech, iw, w));
            }
        }
    }
}
