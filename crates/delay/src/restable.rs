//! Reservation-table delay for the dependence-based microarchitecture
//! (paper Section 5.3, Table 4).
//!
//! In the dependence-based design, wakeup does not broadcast tags across a
//! CAM; instead the instructions at the FIFO heads interrogate a tiny RAM —
//! one *reservation bit* per physical register, set at dispatch and cleared
//! at writeback. The table for 80 physical registers is laid out as a
//! 10-entry × 8-bit array with a column MUX, so its access time is far
//! below both the CAM-window wakeup delay and the rename delay — the
//! quantitative heart of the paper's complexity-effectiveness argument.

use crate::error::{domain, ensure_finite, DelayError};
use crate::wire::Wire;
use crate::{calib, gates, Technology};

/// Parameters of the reservation table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResTableParams {
    /// Machine issue width (sets the port count).
    pub issue_width: usize,
    /// Number of physical registers (one reservation bit each).
    pub physical_regs: usize,
}

impl ResTableParams {
    /// Parameters matching the paper's Table 4 rows: 80 physical registers
    /// at 4-way, 128 at 8-way; other widths interpolate at 20 per slot.
    pub fn new(issue_width: usize) -> ResTableParams {
        let physical_regs = match issue_width {
            4 => 80,
            8 => 128,
            w => 20 * w.max(1),
        };
        ResTableParams { issue_width, physical_regs }
    }

    /// Rows in the array (`physical_regs / 8`, rounded up).
    pub fn entries(&self) -> usize {
        self.physical_regs.div_ceil(calib::RESTABLE_ROW_BITS)
    }

    /// Validates the parameters against the modeled domains
    /// ([`domain::ISSUE_WIDTH`], [`domain::PHYSICAL_REGS`]).
    ///
    /// # Errors
    ///
    /// [`DelayError::OutOfDomain`] naming the first violated parameter.
    pub fn validate(&self) -> Result<(), DelayError> {
        domain::ISSUE_WIDTH.check_usize("restable", "issue_width", self.issue_width)?;
        domain::PHYSICAL_REGS.check_usize("restable", "physical_regs", self.physical_regs)?;
        Ok(())
    }
}

/// Reservation-table access delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResTableDelay {
    /// Array access logic (decode, bitline, sense, column mux), picoseconds.
    pub access_ps: f64,
    /// Wire contribution of the (short) word/bit lines, picoseconds.
    pub wire_ps: f64,
}

impl ResTableDelay {
    /// Computes the reservation-table delay.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`ResTableParams::validate`] — in
    /// release builds too; use [`ResTableDelay::try_compute`] for a
    /// checked path.
    pub fn compute(tech: &Technology, params: &ResTableParams) -> ResTableDelay {
        assert!(params.issue_width > 0, "issue width must be positive");
        assert!(params.physical_regs > 0, "physical registers must be positive");
        Self::try_compute(tech, params).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked form of [`ResTableDelay::compute`]: validates the
    /// parameters and verifies every stage-level intermediate is a finite
    /// non-negative delay.
    ///
    /// # Errors
    ///
    /// [`DelayError::OutOfDomain`] for parameters outside the modeled
    /// domain; [`DelayError::NonFinite`] if a component still came out
    /// NaN, infinite, or negative.
    pub fn try_compute(
        tech: &Technology,
        params: &ResTableParams,
    ) -> Result<ResTableDelay, DelayError> {
        params.validate()?;
        // Port circuitry, word-select, and column-mux fan-in all grow with
        // issue width; the array itself is tiny.
        let stages = calib::RESTABLE_BASE_STAGES
            + calib::RESTABLE_STAGES_PER_SLOT * params.issue_width as f64;
        let access_ps = gates::try_stages_ps(tech, stages)?;

        let ports = 3.0 * params.issue_width as f64;
        let cell =
            calib::RESTABLE_CELL_BASE_LAMBDA + calib::RESTABLE_CELL_PER_PORT_LAMBDA * ports;
        let bitline = Wire::try_new(params.entries() as f64 * cell)?;
        let wordline = Wire::try_new(calib::RESTABLE_ROW_BITS as f64 * cell)?;
        let wire_ps = calib::R_DRIVER_OHM
            * (bitline.capacitance_ff(tech) + wordline.capacitance_ff(tech))
            * 1e-3
            + bitline.delay_ps(tech)
            + wordline.delay_ps(tech);

        let d = ResTableDelay {
            access_ps: ensure_finite("restable", "access_ps", access_ps)?,
            wire_ps: ensure_finite("restable", "wire_ps", wire_ps)?,
        };
        ensure_finite("restable", "total_ps", d.total_ps())?;
        Ok(d)
    }

    /// Total access delay, picoseconds.
    pub fn total_ps(&self) -> f64 {
        self.access_ps + self.wire_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rename::{RenameDelay, RenameParams};
    use crate::wakeup::{WakeupDelay, WakeupParams};
    use crate::FeatureSize;

    #[test]
    fn table4_anchors() {
        // Paper Table 4 (0.18 µm): 192.1 ps at 4-way, 251.7 ps at 8-way.
        let tech = Technology::new(FeatureSize::U018);
        let d4 = ResTableDelay::compute(&tech, &ResTableParams::new(4)).total_ps();
        let d8 = ResTableDelay::compute(&tech, &ResTableParams::new(8)).total_ps();
        assert!((d4 - 192.1).abs() / 192.1 < 0.05, "4-way {d4}");
        assert!((d8 - 251.7).abs() / 251.7 < 0.05, "8-way {d8}");
    }

    #[test]
    fn layout_matches_paper_example() {
        // "For a 4-way machine with 80 physical registers, the reservation
        // table can be laid out as a 10-entry table with each entry storing
        // 8 bits."
        let p = ResTableParams::new(4);
        assert_eq!(p.physical_regs, 80);
        assert_eq!(p.entries(), 10);
        assert_eq!(ResTableParams::new(8).entries(), 16);
    }

    #[test]
    fn much_faster_than_cam_window_wakeup() {
        // Section 5.3: "for both cases, the wakeup delay is much smaller
        // than the wakeup delay for a 4-way, 32-entry issue window".
        for tech in Technology::all() {
            let cam = WakeupDelay::compute(&tech, &WakeupParams::new(4, 32)).total_ps();
            for iw in [4, 8] {
                let rt = ResTableDelay::compute(&tech, &ResTableParams::new(iw)).total_ps();
                assert!(rt < cam, "{tech} {iw}-way: {rt} !< {cam}");
            }
        }
    }

    #[test]
    fn faster_than_rename() {
        // Section 5.3: "this delay is smaller than the corresponding
        // register renaming delay" — which is what makes rename the new
        // critical stage.
        for tech in Technology::all() {
            for iw in [4, 8] {
                let rt = ResTableDelay::compute(&tech, &ResTableParams::new(iw)).total_ps();
                let rn = RenameDelay::compute(&tech, &RenameParams::new(iw)).total_ps();
                assert!(rt < rn, "{tech} {iw}-way");
            }
        }
    }

    #[test]
    fn grows_with_issue_width() {
        let tech = Technology::new(FeatureSize::U018);
        let d = |iw| ResTableDelay::compute(&tech, &ResTableParams::new(iw)).total_ps();
        assert!(d(2) < d(4));
        assert!(d(4) < d(8));
    }
}
