//! Distributed-RC wire delay model.
//!
//! Wires are modeled as distributed RC lines (Elmore delay with the 0.38
//! distributed factor the paper quotes for its bypass analysis), with
//! resistance and capacitance per λ taken from the [`Technology`].

use crate::error::{domain, DelayError};
use crate::Technology;

/// Elmore coefficient for a distributed RC line driven at one end.
pub const DISTRIBUTED_RC_FACTOR: f64 = 0.38;

/// A metal wire of a given length, in λ.
///
/// ```
/// use ce_delay::{FeatureSize, Technology};
/// use ce_delay::wire::Wire;
///
/// let tech = Technology::new(FeatureSize::U018);
/// let short = Wire::new(1_000.0).delay_ps(&tech);
/// let long = Wire::new(2_000.0).delay_ps(&tech);
/// // Distributed RC delay grows quadratically with length.
/// assert!((long / short - 4.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wire {
    length_lambda: f64,
}

impl Wire {
    /// A wire of `length_lambda` λ.
    ///
    /// # Panics
    ///
    /// Panics if the length is negative, not finite, or beyond
    /// [`domain::WIRE_LENGTH_LAMBDA`]; use [`Wire::try_new`] for a
    /// checked path.
    pub fn new(length_lambda: f64) -> Wire {
        assert!(
            length_lambda.is_finite() && length_lambda >= 0.0,
            "wire length must be a non-negative finite number of λ"
        );
        Wire::try_new(length_lambda).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked form of [`Wire::new`].
    ///
    /// # Errors
    ///
    /// [`DelayError::OutOfDomain`] if the length is negative, non-finite,
    /// or beyond [`domain::WIRE_LENGTH_LAMBDA`].
    pub fn try_new(length_lambda: f64) -> Result<Wire, DelayError> {
        domain::WIRE_LENGTH_LAMBDA.check("wire", "length_lambda", length_lambda)?;
        Ok(Wire { length_lambda })
    }

    /// The wire length in λ.
    pub fn length_lambda(&self) -> f64 {
        self.length_lambda
    }

    /// Total wire resistance, in ohms.
    pub fn resistance_ohm(&self, tech: &Technology) -> f64 {
        tech.r_per_lambda_ohm() * self.length_lambda
    }

    /// Total wire capacitance, in femtofarads.
    pub fn capacitance_ff(&self, tech: &Technology) -> f64 {
        tech.c_per_lambda_ff() * self.length_lambda
    }

    /// Intrinsic distributed-RC delay of the wire itself, in picoseconds:
    /// `0.38 · R · C` with `R`/`C` the total wire resistance/capacitance.
    ///
    /// This is the quantity the paper's bypass model uses
    /// (Section 4.4.2: `T = 0.5 · R_metal · C_metal · L²` up to the
    /// distributed-line coefficient).
    pub fn delay_ps(&self, tech: &Technology) -> f64 {
        // Ω · fF = 1e-15 s = 1e-3 ps.
        DISTRIBUTED_RC_FACTOR * self.resistance_ohm(tech) * self.capacitance_ff(tech) * 1e-3
    }

    /// Delay of the wire when broken into optimally repeatered segments,
    /// in picoseconds: repeaters turn the quadratic distributed-RC delay
    /// into a linear one at the cost of area and power. The paper's bypass
    /// model deliberately has *no* repeaters ("alternative layouts alone
    /// will only decrease constants; the quadratic delay growth … will
    /// remain") — this method quantifies the best such a constant-factor
    /// fix could do.
    ///
    /// Model: segments of `segment_lambda` λ, each costing its own
    /// distributed RC plus one repeater stage delay.
    ///
    /// # Panics
    ///
    /// Panics if `segment_lambda` is not a positive finite length or
    /// `repeater_stage_ps` is not a finite non-negative delay — in
    /// release builds too; use [`Wire::try_repeatered_delay_ps`] for a
    /// checked path.
    pub fn repeatered_delay_ps(
        &self,
        tech: &Technology,
        segment_lambda: f64,
        repeater_stage_ps: f64,
    ) -> f64 {
        self.try_repeatered_delay_ps(tech, segment_lambda, repeater_stage_ps)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked form of [`Wire::repeatered_delay_ps`].
    ///
    /// # Errors
    ///
    /// [`DelayError::OutOfDomain`] if either argument is outside its
    /// domain (`segment_lambda` must be a positive length within
    /// [`domain::WIRE_LENGTH_LAMBDA`]; `repeater_stage_ps` must be a
    /// finite non-negative delay).
    pub fn try_repeatered_delay_ps(
        &self,
        tech: &Technology,
        segment_lambda: f64,
        repeater_stage_ps: f64,
    ) -> Result<f64, DelayError> {
        domain::WIRE_LENGTH_LAMBDA.check("wire", "segment_lambda", segment_lambda)?;
        if segment_lambda <= 0.0 {
            return Err(DelayError::OutOfDomain {
                structure: "wire",
                param: "segment_lambda",
                value: segment_lambda,
                min: f64::MIN_POSITIVE,
                max: domain::WIRE_LENGTH_LAMBDA.max,
            });
        }
        if !(repeater_stage_ps.is_finite() && repeater_stage_ps >= 0.0) {
            return Err(DelayError::OutOfDomain {
                structure: "wire",
                param: "repeater_stage_ps",
                value: repeater_stage_ps,
                min: 0.0,
                max: f64::MAX,
            });
        }
        let segments = (self.length_lambda / segment_lambda).ceil().max(1.0);
        let per_segment = Wire::new(self.length_lambda / segments).delay_ps(tech);
        Ok(segments * (per_segment + repeater_stage_ps))
    }

    /// Delay of the wire when driven by a driver of resistance
    /// `driver_ohm` and loaded by `load_ff` of lumped capacitance at the far
    /// end, in picoseconds. This is the Elmore sum:
    /// `R_drv·(C_wire + C_load) + 0.38·R_wire·C_wire + R_wire·C_load`.
    pub fn driven_delay_ps(&self, tech: &Technology, driver_ohm: f64, load_ff: f64) -> f64 {
        let rw = self.resistance_ohm(tech);
        let cw = self.capacitance_ff(tech);
        (driver_ohm * (cw + load_ff) + DISTRIBUTED_RC_FACTOR * rw * cw + rw * load_ff) * 1e-3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureSize;

    fn tech() -> Technology {
        Technology::new(FeatureSize::U018)
    }

    #[test]
    fn zero_length_wire_has_zero_delay() {
        assert_eq!(Wire::new(0.0).delay_ps(&tech()), 0.0);
    }

    #[test]
    fn delay_is_technology_independent_per_lambda() {
        // The paper's Table 1 note: bypass delays are the same for all three
        // technologies because per-λ wire RC is held constant.
        let w = Wire::new(20_500.0);
        let d: Vec<f64> = Technology::all().iter().map(|t| w.delay_ps(t)).collect();
        assert!((d[0] - d[1]).abs() < 1e-9);
        assert!((d[1] - d[2]).abs() < 1e-9);
    }

    #[test]
    fn table1_anchor_4way() {
        // Paper Table 1: 20500 λ → 184.9 ps.
        let d = Wire::new(20_500.0).delay_ps(&tech());
        assert!((d - 184.9).abs() / 184.9 < 0.02, "got {d}");
    }

    #[test]
    fn table1_anchor_8way() {
        // Paper Table 1: 49000 λ → 1056.4 ps.
        let d = Wire::new(49_000.0).delay_ps(&tech());
        assert!((d - 1056.4).abs() / 1056.4 < 0.02, "got {d}");
    }

    #[test]
    fn driven_delay_exceeds_intrinsic_delay() {
        let w = Wire::new(5_000.0);
        let t = tech();
        assert!(w.driven_delay_ps(&t, 100.0, 10.0) > w.delay_ps(&t));
    }

    #[test]
    fn repeaters_linearize_long_wires() {
        let t = tech();
        let long = Wire::new(49_000.0);
        let raw = long.delay_ps(&t);
        let repeated = long.repeatered_delay_ps(&t, 5_000.0, 20.0);
        assert!(repeated < raw, "repeaters must help a long wire: {repeated} vs {raw}");
        // Doubling the length roughly doubles (not quadruples) the
        // repeatered delay.
        let half = Wire::new(24_500.0).repeatered_delay_ps(&t, 5_000.0, 20.0);
        let ratio = repeated / half;
        assert!((1.6..=2.4).contains(&ratio), "ratio {ratio}");
        // Short wires are better off without repeaters.
        let short = Wire::new(1_000.0);
        assert!(short.repeatered_delay_ps(&t, 5_000.0, 20.0) > short.delay_ps(&t));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_length_panics() {
        let _ = Wire::new(-1.0);
    }

    #[test]
    fn try_new_rejects_garbage_in_release_builds() {
        assert!(Wire::try_new(-1.0).is_err());
        assert!(Wire::try_new(f64::NAN).is_err());
        assert!(Wire::try_new(f64::INFINITY).is_err());
        assert!(Wire::try_new(1e12).is_err(), "beyond the modeled domain");
        assert_eq!(Wire::try_new(500.0).unwrap(), Wire::new(500.0));
    }

    #[test]
    fn try_repeatered_rejects_bad_segments() {
        // This guard used to be a debug_assert! that vanished in release
        // builds (a zero segment length silently produced inf/NaN delay).
        let t = tech();
        let w = Wire::new(10_000.0);
        assert!(w.try_repeatered_delay_ps(&t, 0.0, 20.0).is_err());
        assert!(w.try_repeatered_delay_ps(&t, -5.0, 20.0).is_err());
        assert!(w.try_repeatered_delay_ps(&t, f64::NAN, 20.0).is_err());
        assert!(w.try_repeatered_delay_ps(&t, 5_000.0, f64::NAN).is_err());
        assert!(w.try_repeatered_delay_ps(&t, 5_000.0, -1.0).is_err());
        assert_eq!(
            w.try_repeatered_delay_ps(&t, 5_000.0, 20.0).unwrap(),
            w.repeatered_delay_ps(&t, 5_000.0, 20.0)
        );
    }
}
