//! Selection logic delay (paper Section 4.3, Figure 8).
//!
//! Selection is a tree of 4-input arbiter cells. Request signals propagate
//! from the window entries up to the root; the root grants one requester;
//! the grant propagates back down to the selected instruction:
//!
//! `T_select = (h−1)·T_req + T_root + (h−1)·T_grant`,  `h = ⌈log₄ W⌉`
//!
//! All three components are pure logic (the paper's model deliberately
//! excludes the request wires), so selection delay scales well with feature
//! size and grows only logarithmically with window size — the root-cell
//! term is window-independent, which is why doubling the window raises the
//! delay by less than 100 %.

use crate::error::{domain, ensure_finite, DelayError};
use crate::{calib, gates, Technology};

/// Parameters of the selection logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectParams {
    /// Number of window entries arbitrated over.
    pub window_size: usize,
    /// Arbiter cell fan-in (the paper found 4 optimal).
    pub arbiter_fanin: usize,
    /// Simultaneous grants issued by this selection block — the number of
    /// identical functional units it schedules (the paper's Figure 8
    /// assumes 1; the companion tech report extends to several via stacked
    /// arbitration).
    pub grants: usize,
}

impl SelectParams {
    /// Parameters with the paper's 4-input arbiter cells and a single
    /// functional unit (the Figure 8 configuration).
    pub fn new(window_size: usize) -> SelectParams {
        SelectParams { window_size, arbiter_fanin: calib::SELECT_FANIN, grants: 1 }
    }

    /// The same, scheduling `grants` identical units from one block.
    ///
    /// # Panics
    ///
    /// Panics if `grants` is zero.
    pub fn with_grants(window_size: usize, grants: usize) -> SelectParams {
        assert!(grants > 0, "need at least one grant");
        SelectParams { grants, ..SelectParams::new(window_size) }
    }

    /// Height of the arbitration tree.
    pub fn tree_height(&self) -> u32 {
        gates::tree_height(self.window_size, self.arbiter_fanin)
    }

    /// Validates the parameters against the modeled domains
    /// ([`domain::WINDOW_SIZE`], [`domain::ARBITER_FANIN`],
    /// [`domain::GRANTS`]).
    ///
    /// # Errors
    ///
    /// [`DelayError::OutOfDomain`] naming the first violated parameter.
    pub fn validate(&self) -> Result<(), DelayError> {
        domain::WINDOW_SIZE.check_usize("select", "window_size", self.window_size)?;
        domain::ARBITER_FANIN.check_usize("select", "arbiter_fanin", self.arbiter_fanin)?;
        domain::GRANTS.check_usize("select", "grants", self.grants)?;
        Ok(())
    }
}

/// Delay breakdown of the selection logic, all in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectDelay {
    /// Request (`anyreq`) propagation from the leaves to the root.
    pub request_prop_ps: f64,
    /// Root-cell priority arbitration.
    pub root_ps: f64,
    /// Grant propagation from the root back to the selected entry.
    pub grant_prop_ps: f64,
}

impl SelectDelay {
    /// Computes the selection delay.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`SelectParams::validate`] — in
    /// release builds too; use [`SelectDelay::try_compute`] for a checked
    /// path.
    pub fn compute(tech: &Technology, params: &SelectParams) -> SelectDelay {
        assert!(params.window_size > 0, "window size must be positive");
        assert!(params.grants > 0, "need at least one grant");
        Self::try_compute(tech, params).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked form of [`SelectDelay::compute`]: validates the parameters
    /// and verifies every stage-level intermediate is a finite
    /// non-negative delay.
    ///
    /// # Errors
    ///
    /// [`DelayError::OutOfDomain`] for parameters outside the modeled
    /// domain; [`DelayError::NonFinite`] if a component still came out
    /// NaN, infinite, or negative.
    pub fn try_compute(tech: &Technology, params: &SelectParams) -> Result<SelectDelay, DelayError> {
        params.validate()?;
        let height = gates::try_tree_height(params.window_size, params.arbiter_fanin)?;
        let levels_below_root = (height - 1) as f64;
        // Extra grants deepen the root arbitration (stacked priority
        // encoding) but leave the request/grant propagation untouched.
        let root_stages = calib::SELECT_ROOT_STAGES
            + calib::SELECT_EXTRA_GRANT_STAGES * (params.grants as f64 - 1.0);
        let d = SelectDelay {
            request_prop_ps: gates::try_stages_ps(
                tech,
                calib::SELECT_REQ_STAGES_PER_LEVEL * levels_below_root,
            )?,
            root_ps: gates::try_stages_ps(tech, root_stages)?,
            grant_prop_ps: gates::try_stages_ps(
                tech,
                calib::SELECT_GRANT_STAGES_PER_LEVEL * levels_below_root,
            )?,
        };
        ensure_finite("select", "request_prop_ps", d.request_prop_ps)?;
        ensure_finite("select", "root_ps", d.root_ps)?;
        ensure_finite("select", "grant_prop_ps", d.grant_prop_ps)?;
        ensure_finite("select", "total_ps", d.total_ps())?;
        Ok(d)
    }

    /// Total selection delay, picoseconds.
    pub fn total_ps(&self) -> f64 {
        self.request_prop_ps + self.root_ps + self.grant_prop_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureSize;

    fn select(tech: &Technology, w: usize) -> SelectDelay {
        SelectDelay::compute(tech, &SelectParams::new(w))
    }

    #[test]
    fn grows_logarithmically_with_window_size() {
        let tech = Technology::new(FeatureSize::U018);
        let d16 = select(&tech, 16).total_ps();
        let d32 = select(&tech, 32).total_ps();
        let d64 = select(&tech, 64).total_ps();
        let d128 = select(&tech, 128).total_ps();
        // 32 and 64 share a tree height of 3 with base-4 arbiters.
        assert!(d16 < d32);
        assert_eq!(d32, d64);
        assert!(d64 < d128);
    }

    #[test]
    fn doubling_window_increases_delay_less_than_100_percent() {
        // Section 4.3.3: the root-cell delay is window-independent.
        let tech = Technology::new(FeatureSize::U035);
        let d16 = select(&tech, 16).total_ps();
        let d32 = select(&tech, 32).total_ps();
        let d64 = select(&tech, 64).total_ps();
        let d128 = select(&tech, 128).total_ps();
        assert!(d32 / d16 < 2.0);
        assert!(d128 / d64 < 2.0);
    }

    #[test]
    fn scales_fully_with_feature_size() {
        // All logic, no wires: delay ratio across technologies equals the
        // FO4 ratio exactly.
        let [t080, t035, t018] = Technology::all();
        let r_delay = select(&t080, 64).total_ps() / select(&t018, 64).total_ps();
        let r_tau = t080.tau_fo4_ps() / t018.tau_fo4_ps();
        assert!((r_delay - r_tau).abs() < 1e-9);
        let r_delay = select(&t035, 64).total_ps() / select(&t018, 64).total_ps();
        let r_tau = t035.tau_fo4_ps() / t018.tau_fo4_ps();
        assert!((r_delay - r_tau).abs() < 1e-9);
    }

    #[test]
    fn root_delay_is_window_independent() {
        let tech = Technology::new(FeatureSize::U018);
        assert_eq!(select(&tech, 16).root_ps, select(&tech, 128).root_ps);
    }

    #[test]
    fn component_breakdown_is_consistent() {
        let tech = Technology::new(FeatureSize::U018);
        let d = select(&tech, 64);
        assert!(d.request_prop_ps > 0.0);
        assert!(d.root_ps > 0.0);
        assert_eq!(d.request_prop_ps, d.grant_prop_ps);
        assert!((d.total_ps() - (d.request_prop_ps + d.root_ps + d.grant_prop_ps)).abs() < 1e-12);
    }

    #[test]
    fn extra_grants_deepen_only_the_root() {
        let tech = Technology::new(FeatureSize::U018);
        let one = SelectDelay::compute(&tech, &SelectParams::with_grants(64, 1));
        let four = SelectDelay::compute(&tech, &SelectParams::with_grants(64, 4));
        assert!(four.root_ps > one.root_ps);
        assert_eq!(four.request_prop_ps, one.request_prop_ps);
        assert_eq!(four.grant_prop_ps, one.grant_prop_ps);
        assert_eq!(
            SelectDelay::compute(&tech, &SelectParams::new(64)).total_ps(),
            one.total_ps(),
            "Figure 8's single-unit configuration is the default"
        );
    }

    #[test]
    #[should_panic(expected = "at least one grant")]
    fn zero_grants_panics() {
        let _ = SelectParams::with_grants(64, 0);
    }

    #[test]
    fn try_compute_rejects_out_of_domain_params() {
        let tech = Technology::new(FeatureSize::U018);
        for bad in [
            SelectParams { window_size: 0, arbiter_fanin: 4, grants: 1 },
            SelectParams { window_size: 2048, arbiter_fanin: 4, grants: 1 },
            SelectParams { window_size: 64, arbiter_fanin: 1, grants: 1 },
            SelectParams { window_size: 64, arbiter_fanin: 4, grants: 0 },
            SelectParams { window_size: 64, arbiter_fanin: 4, grants: 65 },
        ] {
            assert!(
                matches!(
                    SelectDelay::try_compute(&tech, &bad),
                    Err(DelayError::OutOfDomain { structure: "select", .. })
                ),
                "{bad:?} must be refused"
            );
        }
    }

    #[test]
    fn try_compute_matches_compute_on_valid_params() {
        for tech in Technology::all() {
            for w in [1, 16, 32, 64, 128, 1024] {
                let p = SelectParams::new(w);
                assert_eq!(SelectDelay::try_compute(&tech, &p).unwrap(), select(&tech, w));
            }
        }
    }

    #[test]
    fn single_entry_window_still_pays_root() {
        let tech = Technology::new(FeatureSize::U018);
        let d = select(&tech, 1);
        assert_eq!(d.request_prop_ps, 0.0);
        assert!(d.root_ps > 0.0);
    }
}
