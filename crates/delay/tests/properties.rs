//! Property-based tests of the delay models: monotonicity, positivity, and
//! shape invariants over randomly drawn design points.

use ce_delay::bypass::{BypassDelay, BypassParams};
use ce_delay::rename::{RenameDelay, RenameParams};
use ce_delay::restable::{ResTableDelay, ResTableParams};
use ce_delay::select::{SelectDelay, SelectParams};
use ce_delay::wakeup::{WakeupDelay, WakeupParams};
use ce_delay::{FeatureSize, Technology};
use proptest::prelude::*;

fn arb_tech() -> impl Strategy<Value = Technology> {
    prop_oneof![
        Just(Technology::new(FeatureSize::U080)),
        Just(Technology::new(FeatureSize::U035)),
        Just(Technology::new(FeatureSize::U018)),
    ]
}

proptest! {
    /// All structure delays are strictly positive and finite at every
    /// plausible design point.
    #[test]
    fn delays_positive_and_finite(
        tech in arb_tech(),
        iw in 1usize..16,
        window in 1usize..256,
    ) {
        let checks = [
            RenameDelay::compute(&tech, &RenameParams::new(iw)).total_ps(),
            WakeupDelay::compute(&tech, &WakeupParams::new(iw, window)).total_ps(),
            SelectDelay::compute(&tech, &SelectParams::new(window)).total_ps(),
            BypassDelay::compute(&tech, &BypassParams::new(iw)).total_ps(),
            ResTableDelay::compute(&tech, &ResTableParams::new(iw)).total_ps(),
        ];
        for d in checks {
            prop_assert!(d.is_finite() && d > 0.0, "delay {d}");
        }
    }

    /// Wakeup delay is monotone in both issue width and window size.
    #[test]
    fn wakeup_monotone(
        tech in arb_tech(),
        iw in 1usize..12,
        window in 2usize..128,
    ) {
        let base = WakeupDelay::compute(&tech, &WakeupParams::new(iw, window)).total_ps();
        let wider = WakeupDelay::compute(&tech, &WakeupParams::new(iw + 1, window)).total_ps();
        let deeper = WakeupDelay::compute(&tech, &WakeupParams::new(iw, window + 8)).total_ps();
        prop_assert!(wider > base);
        prop_assert!(deeper > base);
    }

    /// Rename and bypass delays are monotone in issue width.
    #[test]
    fn rename_and_bypass_monotone(tech in arb_tech(), iw in 1usize..15) {
        let r0 = RenameDelay::compute(&tech, &RenameParams::new(iw)).total_ps();
        let r1 = RenameDelay::compute(&tech, &RenameParams::new(iw + 1)).total_ps();
        prop_assert!(r1 > r0);
        let b0 = BypassDelay::compute(&tech, &BypassParams::new(iw)).total_ps();
        let b1 = BypassDelay::compute(&tech, &BypassParams::new(iw + 1)).total_ps();
        prop_assert!(b1 > b0);
    }

    /// Selection delay is non-decreasing in window size and equal for
    /// windows in the same base-4 tree tier.
    #[test]
    fn select_follows_tree_height(tech in arb_tech(), window in 2usize..200) {
        let d = |w| SelectDelay::compute(&tech, &SelectParams::new(w)).total_ps();
        prop_assert!(d(window + 1) >= d(window));
        // Windows 17..=64 share height 3; spot-check tier equality when
        // both ends land in the same tier.
        if (17..=63).contains(&window) {
            prop_assert_eq!(d(window), d(64));
        }
    }

    /// Logic-only structures scale exactly with the FO4 ratio; bypass does
    /// not scale at all.
    #[test]
    fn scaling_dichotomy(window in 2usize..128, iw in 1usize..12) {
        let t080 = Technology::new(FeatureSize::U080);
        let t018 = Technology::new(FeatureSize::U018);
        let tau_ratio = t080.tau_fo4_ps() / t018.tau_fo4_ps();
        let s080 = SelectDelay::compute(&t080, &SelectParams::new(window)).total_ps();
        let s018 = SelectDelay::compute(&t018, &SelectParams::new(window)).total_ps();
        prop_assert!((s080 / s018 - tau_ratio).abs() < 1e-9);
        let b080 = BypassDelay::compute(&t080, &BypassParams::new(iw)).total_ps();
        let b018 = BypassDelay::compute(&t018, &BypassParams::new(iw)).total_ps();
        prop_assert!((b080 - b018).abs() < 1e-9);
    }

    /// Component sums equal totals (no hidden terms).
    #[test]
    fn components_sum_to_totals(tech in arb_tech(), iw in 1usize..12, window in 1usize..128) {
        let r = RenameDelay::compute(&tech, &RenameParams::new(iw));
        prop_assert!(
            (r.total_ps() - (r.decode_ps + r.wordline_ps + r.bitline_ps + r.senseamp_ps)).abs()
                < 1e-9
        );
        let w = WakeupDelay::compute(&tech, &WakeupParams::new(iw, window));
        prop_assert!(
            (w.total_ps() - (w.tag_drive_ps + w.tag_match_ps + w.match_or_ps)).abs() < 1e-9
        );
    }
}
