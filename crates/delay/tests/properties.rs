//! Property-based tests of the delay models: monotonicity, positivity, and
//! shape invariants over randomly drawn design points.

use ce_delay::bypass::{BypassDelay, BypassParams};
use ce_delay::cache::{CacheDelay, CacheParams};
use ce_delay::regfile::{RegfileDelay, RegfileParams};
use ce_delay::rename::{RenameDelay, RenameParams};
use ce_delay::restable::{ResTableDelay, ResTableParams};
use ce_delay::select::{SelectDelay, SelectParams};
use ce_delay::wakeup::{WakeupDelay, WakeupParams};
use ce_delay::{FeatureSize, PipelineDelays, Technology};
use proptest::prelude::*;

fn arb_tech() -> impl Strategy<Value = Technology> {
    prop_oneof![
        Just(Technology::new(FeatureSize::U080)),
        Just(Technology::new(FeatureSize::U035)),
        Just(Technology::new(FeatureSize::U018)),
    ]
}

proptest! {
    /// All structure delays are strictly positive and finite at every
    /// plausible design point.
    #[test]
    fn delays_positive_and_finite(
        tech in arb_tech(),
        iw in 1usize..16,
        window in 1usize..256,
    ) {
        let checks = [
            RenameDelay::compute(&tech, &RenameParams::new(iw)).total_ps(),
            WakeupDelay::compute(&tech, &WakeupParams::new(iw, window)).total_ps(),
            SelectDelay::compute(&tech, &SelectParams::new(window)).total_ps(),
            BypassDelay::compute(&tech, &BypassParams::new(iw)).total_ps(),
            ResTableDelay::compute(&tech, &ResTableParams::new(iw)).total_ps(),
        ];
        for d in checks {
            prop_assert!(d.is_finite() && d > 0.0, "delay {d}");
        }
    }

    /// Wakeup delay is monotone in both issue width and window size.
    #[test]
    fn wakeup_monotone(
        tech in arb_tech(),
        iw in 1usize..12,
        window in 2usize..128,
    ) {
        let base = WakeupDelay::compute(&tech, &WakeupParams::new(iw, window)).total_ps();
        let wider = WakeupDelay::compute(&tech, &WakeupParams::new(iw + 1, window)).total_ps();
        let deeper = WakeupDelay::compute(&tech, &WakeupParams::new(iw, window + 8)).total_ps();
        prop_assert!(wider > base);
        prop_assert!(deeper > base);
    }

    /// Rename and bypass delays are monotone in issue width.
    #[test]
    fn rename_and_bypass_monotone(tech in arb_tech(), iw in 1usize..15) {
        let r0 = RenameDelay::compute(&tech, &RenameParams::new(iw)).total_ps();
        let r1 = RenameDelay::compute(&tech, &RenameParams::new(iw + 1)).total_ps();
        prop_assert!(r1 > r0);
        let b0 = BypassDelay::compute(&tech, &BypassParams::new(iw)).total_ps();
        let b1 = BypassDelay::compute(&tech, &BypassParams::new(iw + 1)).total_ps();
        prop_assert!(b1 > b0);
    }

    /// Selection delay is non-decreasing in window size and equal for
    /// windows in the same base-4 tree tier.
    #[test]
    fn select_follows_tree_height(tech in arb_tech(), window in 2usize..200) {
        let d = |w| SelectDelay::compute(&tech, &SelectParams::new(w)).total_ps();
        prop_assert!(d(window + 1) >= d(window));
        // Windows 17..=64 share height 3; spot-check tier equality when
        // both ends land in the same tier.
        if (17..=63).contains(&window) {
            prop_assert_eq!(d(window), d(64));
        }
    }

    /// Logic-only structures scale exactly with the FO4 ratio; bypass does
    /// not scale at all.
    #[test]
    fn scaling_dichotomy(window in 2usize..128, iw in 1usize..12) {
        let t080 = Technology::new(FeatureSize::U080);
        let t018 = Technology::new(FeatureSize::U018);
        let tau_ratio = t080.tau_fo4_ps() / t018.tau_fo4_ps();
        let s080 = SelectDelay::compute(&t080, &SelectParams::new(window)).total_ps();
        let s018 = SelectDelay::compute(&t018, &SelectParams::new(window)).total_ps();
        prop_assert!((s080 / s018 - tau_ratio).abs() < 1e-9);
        let b080 = BypassDelay::compute(&t080, &BypassParams::new(iw)).total_ps();
        let b018 = BypassDelay::compute(&t018, &BypassParams::new(iw)).total_ps();
        prop_assert!((b080 - b018).abs() < 1e-9);
    }

    /// Component sums equal totals (no hidden terms).
    #[test]
    fn components_sum_to_totals(tech in arb_tech(), iw in 1usize..12, window in 1usize..128) {
        let r = RenameDelay::compute(&tech, &RenameParams::new(iw));
        prop_assert!(
            (r.total_ps() - (r.decode_ps + r.wordline_ps + r.bitline_ps + r.senseamp_ps)).abs()
                < 1e-9
        );
        let w = WakeupDelay::compute(&tech, &WakeupParams::new(iw, window));
        prop_assert!(
            (w.total_ps() - (w.tag_drive_ps + w.tag_match_ps + w.match_or_ps)).abs() < 1e-9
        );
        let s = SelectDelay::compute(&tech, &SelectParams::new(window.max(2)));
        prop_assert!(
            (s.total_ps() - (s.request_prop_ps + s.root_ps + s.grant_prop_ps)).abs() < 1e-9
        );
        let rt = ResTableDelay::compute(&tech, &ResTableParams::new(iw));
        prop_assert!((rt.total_ps() - (rt.access_ps + rt.wire_ps)).abs() < 1e-9);
        let rf = RegfileDelay::compute(&tech, &RegfileParams::centralized(iw));
        prop_assert!(
            (rf.total_ps() - (rf.decode_ps + rf.wordline_ps + rf.bitline_ps + rf.senseamp_ps))
                .abs()
                < 1e-9
        );
        let c = CacheDelay::compute(
            &tech,
            &CacheParams { bytes: 8192, ways: 2, line_bytes: 32, ports: 1 },
        );
        prop_assert!(
            (c.total_ps() - (c.data_path_ps.max(c.tag_path_ps) + c.select_ps)).abs() < 1e-9
        );
    }

    /// Every logic-dominated delay strictly improves as the process shrinks:
    /// 0.18 µm is faster than 0.35 µm, which is faster than 0.8 µm, at every
    /// design point. Bypass is the lone exception — wire-dominated, it is
    /// identical across technologies (the paper's central observation).
    #[test]
    fn technology_ordering(iw in 1usize..12, window in 2usize..128) {
        let t080 = Technology::new(FeatureSize::U080);
        let t035 = Technology::new(FeatureSize::U035);
        let t018 = Technology::new(FeatureSize::U018);
        let per_tech = |t: &Technology| -> [f64; 5] {
            [
                RenameDelay::compute(t, &RenameParams::new(iw)).total_ps(),
                WakeupDelay::compute(t, &WakeupParams::new(iw, window)).total_ps(),
                SelectDelay::compute(t, &SelectParams::new(window)).total_ps(),
                ResTableDelay::compute(t, &ResTableParams::new(iw)).total_ps(),
                RegfileDelay::compute(t, &RegfileParams::centralized(iw)).total_ps(),
            ]
        };
        let (d080, d035, d018) = (per_tech(&t080), per_tech(&t035), per_tech(&t018));
        for i in 0..5 {
            prop_assert!(d018[i] < d035[i], "structure {i}: {} !< {}", d018[i], d035[i]);
            prop_assert!(d035[i] < d080[i], "structure {i}: {} !< {}", d035[i], d080[i]);
        }
        let b080 = BypassDelay::compute(&t080, &BypassParams::new(iw)).total_ps();
        let b018 = BypassDelay::compute(&t018, &BypassParams::new(iw)).total_ps();
        prop_assert!((b080 - b018).abs() < 1e-9);
    }

    /// The pipeline roll-up reports exactly the per-structure delays it was
    /// built from — no hidden rescaling between the structure models and the
    /// machine-level summary.
    #[test]
    fn pipeline_matches_structures(tech in arb_tech(), iw in 1usize..12, window in 2usize..128) {
        let p = PipelineDelays::compute(&tech, iw, window);
        let r = RenameDelay::compute(&tech, &RenameParams::new(iw)).total_ps();
        let w = WakeupDelay::compute(&tech, &WakeupParams::new(iw, window)).total_ps();
        let s = SelectDelay::compute(&tech, &SelectParams::new(window)).total_ps();
        let b = BypassDelay::compute(&tech, &BypassParams::new(iw)).total_ps();
        prop_assert!((p.rename_ps - r).abs() < 1e-9);
        prop_assert!((p.wakeup_ps - w).abs() < 1e-9);
        prop_assert!((p.select_ps - s).abs() < 1e-9);
        prop_assert!((p.bypass_ps - b).abs() < 1e-9);
        prop_assert!((p.window_ps() - (w + s)).abs() < 1e-9);
    }

    /// Selection delay grows logarithmically: quadrupling the window adds a
    /// constant increment (one arbitration tier), independent of where in
    /// the range the quadrupling happens.
    #[test]
    fn select_log_shape(tech in arb_tech(), tier in 1usize..4) {
        let d = |w| SelectDelay::compute(&tech, &SelectParams::new(w)).total_ps();
        // Window sizes 4^k sit at exact tier boundaries.
        let w = 4usize.pow(tier as u32);
        let step_low = d(w * 4) - d(w);
        let step_high = d(w * 16) - d(w * 4);
        prop_assert!(step_low > 0.0);
        prop_assert!((step_low - step_high).abs() < 1e-9, "{step_low} vs {step_high}");
        // The root stage never grows with window size.
        let root_small = SelectDelay::compute(&tech, &SelectParams::new(w)).root_ps;
        let root_large = SelectDelay::compute(&tech, &SelectParams::new(w * 16)).root_ps;
        prop_assert_eq!(root_small, root_large);
    }

    /// The checked constructors agree with the panicking ones on every
    /// in-domain point: `try_compute` is a strict refinement, not a fork.
    #[test]
    fn try_paths_agree(tech in arb_tech(), iw in 1usize..12, window in 2usize..128) {
        let r = RenameDelay::try_compute(&tech, &RenameParams::new(iw)).unwrap();
        prop_assert_eq!(
            r.total_ps(),
            RenameDelay::compute(&tech, &RenameParams::new(iw)).total_ps()
        );
        let w = WakeupDelay::try_compute(&tech, &WakeupParams::new(iw, window)).unwrap();
        prop_assert_eq!(
            w.total_ps(),
            WakeupDelay::compute(&tech, &WakeupParams::new(iw, window)).total_ps()
        );
        let p = PipelineDelays::try_compute(&tech, iw, window).unwrap();
        prop_assert_eq!(p.window_ps(), PipelineDelays::compute(&tech, iw, window).window_ps());
    }
}
