//! Seeded fuzz-style corpus for the checked delay APIs: randomized
//! parameters must never panic `validate()` or `try_compute`, and the two
//! must agree — every parameter set that validates evaluates to a finite
//! delay, every set that fails validation is refused with an error.
//!
//! The `delaycheck` bench binary runs a similar campaign as a release
//! gate; this test keeps the guarantee enforced by `cargo test` alone,
//! mirroring the simulator-side `fuzz_config` corpus.

use ce_delay::bypass::{BypassDelay, BypassParams};
use ce_delay::cache::{CacheDelay, CacheParams};
use ce_delay::error::DelayError;
use ce_delay::pipeline::ClockComparison;
use ce_delay::regfile::{RegfileDelay, RegfileParams};
use ce_delay::rename::{RenameDelay, RenameParams, RenameScheme};
use ce_delay::restable::{ResTableDelay, ResTableParams};
use ce_delay::select::{SelectDelay, SelectParams};
use ce_delay::wakeup::{WakeupDelay, WakeupParams};
use ce_delay::{PipelineDelays, Technology};
use rand::{Rng, SeedableRng, StdRng};

/// Draws a value from a small adversarial palette: boundary values (0, 1),
/// plausible design points, and far-out-of-domain garbage.
fn wild(rng: &mut StdRng) -> usize {
    match rng.gen_range(0..6usize) {
        0 => 0,
        1 => 1,
        2 => rng.gen_range(2..9usize),
        3 => rng.gen_range(9..129usize),
        4 => rng.gen_range(129..5000usize),
        _ => rng.gen_range(5000..2_000_000usize),
    }
}

/// Runs one checked evaluation under `catch_unwind` and asserts the
/// validate/try_compute agreement contract.
fn check<P: std::fmt::Debug + std::panic::RefUnwindSafe>(
    case: usize,
    structure: &str,
    params: &P,
    validated: Result<(), DelayError>,
    computed: std::thread::Result<Result<f64, DelayError>>,
    tally: &mut (usize, usize),
) {
    let outcome = computed.unwrap_or_else(|_| {
        panic!("case {case}: {structure} try_compute panicked on {params:?}")
    });
    match (validated, outcome) {
        (Ok(()), Ok(d)) => {
            assert!(d.is_finite() && d > 0.0, "case {case}: {structure} delay {d} on {params:?}");
            tally.0 += 1;
        }
        (Err(v), Err(c)) => {
            assert!(!v.to_string().is_empty() && !c.to_string().is_empty());
            tally.1 += 1;
        }
        (Ok(()), Err(e)) => {
            panic!("case {case}: {structure} validated but try_compute refused ({e}): {params:?}")
        }
        (Err(e), Ok(_)) => {
            panic!("case {case}: {structure} rejected ({e}) but try_compute evaluated: {params:?}")
        }
    }
}

#[test]
fn randomized_params_never_panic_and_validate_agrees_with_try_compute() {
    let mut rng = StdRng::seed_from_u64(0xd_e1a);
    let techs = Technology::all();
    let mut tally = (0usize, 0usize);
    for case in 0..400 {
        let tech = techs[rng.gen_range(0..techs.len())];

        let p = RenameParams {
            issue_width: wild(&mut rng),
            physical_regs: wild(&mut rng),
            scheme: if rng.gen_range(0..2usize) == 0 {
                RenameScheme::Ram
            } else {
                RenameScheme::Cam
            },
        };
        check(
            case,
            "rename",
            &p,
            p.validate(),
            std::panic::catch_unwind(|| {
                RenameDelay::try_compute(&tech, &p).map(|d| d.total_ps())
            }),
            &mut tally,
        );

        let p = WakeupParams::new(wild(&mut rng), wild(&mut rng));
        check(
            case,
            "wakeup",
            &p,
            p.validate(),
            std::panic::catch_unwind(|| {
                WakeupDelay::try_compute(&tech, &p).map(|d| d.total_ps())
            }),
            &mut tally,
        );

        let p = SelectParams {
            window_size: wild(&mut rng),
            arbiter_fanin: wild(&mut rng),
            grants: wild(&mut rng),
        };
        check(
            case,
            "select",
            &p,
            p.validate(),
            std::panic::catch_unwind(|| {
                SelectDelay::try_compute(&tech, &p).map(|d| d.total_ps())
            }),
            &mut tally,
        );

        let p = BypassParams {
            issue_width: wild(&mut rng),
            pipestages_after_exec: wild(&mut rng),
        };
        check(
            case,
            "bypass",
            &p,
            p.validate(),
            std::panic::catch_unwind(|| {
                BypassDelay::try_compute(&tech, &p).map(|d| d.total_ps())
            }),
            &mut tally,
        );

        let p = ResTableParams { issue_width: wild(&mut rng), physical_regs: wild(&mut rng) };
        check(
            case,
            "restable",
            &p,
            p.validate(),
            std::panic::catch_unwind(|| {
                ResTableDelay::try_compute(&tech, &p).map(|d| d.total_ps())
            }),
            &mut tally,
        );

        let p = RegfileParams {
            registers: wild(&mut rng),
            ports: wild(&mut rng),
            bits: wild(&mut rng),
        };
        check(
            case,
            "regfile",
            &p,
            p.validate(),
            std::panic::catch_unwind(|| {
                RegfileDelay::try_compute(&tech, &p).map(|d| d.total_ps())
            }),
            &mut tally,
        );

        let p = CacheParams {
            bytes: wild(&mut rng),
            ways: wild(&mut rng),
            line_bytes: wild(&mut rng),
            ports: wild(&mut rng),
        };
        check(
            case,
            "cache",
            &p,
            p.validate(),
            std::panic::catch_unwind(|| {
                CacheDelay::try_compute(&tech, &p).map(|d| d.total_ps())
            }),
            &mut tally,
        );

        // The pipeline roll-up and clustered-clock comparison have no
        // standalone validate(); they must still refuse garbage via Err.
        let (iw, w, clusters) = (wild(&mut rng), wild(&mut rng), wild(&mut rng));
        let outcome = std::panic::catch_unwind(|| {
            PipelineDelays::try_compute(&tech, iw, w)
                .and_then(|d| d.try_stages_at(w as f64).map(|_| d.window_ps()))
                .and_then(|_| {
                    ClockComparison::try_compute(&tech, iw, w, clusters)
                        .map(|c| c.window_clock_ps)
                })
        })
        .unwrap_or_else(|_| panic!("case {case}: pipeline panicked on ({iw}, {w}, {clusters})"));
        match outcome {
            Ok(d) => {
                assert!(d.is_finite() && d > 0.0, "case {case}");
                tally.0 += 1;
            }
            Err(e) => {
                assert!(!e.to_string().is_empty(), "case {case}");
                tally.1 += 1;
            }
        }
    }
    // The corpus must straddle the validation boundary, not sit on one side.
    let (accepted, rejected) = tally;
    assert!(accepted > 100, "only {accepted} evaluations accepted");
    assert!(rejected > 100, "only {rejected} evaluations rejected");
}
