//! Property-based tests of the steering heuristic and FIFO pool:
//! structural invariants that must hold for any instruction stream.

use ce_core::fifos::{FifoPool, PoolConfig};
use ce_core::steering::{DependenceSteerer, RandomSteerer, SteerOutcome};
use ce_core::{FifoId, InstId};
use ce_isa::{Instruction, Opcode, Reg};
use proptest::prelude::*;
use std::collections::HashMap;

/// A compact generator of ALU instructions with controlled dependences:
/// `(dst, src_back)` where `src_back` picks a register written `k`
/// instructions ago (or an always-ready register when out of range).
fn arb_stream() -> impl Strategy<Value = Vec<Instruction>> {
    proptest::collection::vec((8u8..24, 0usize..6), 1..80).prop_map(|pairs| {
        let mut written: Vec<Reg> = Vec::new();
        let mut out = Vec::new();
        for (dst, back) in pairs {
            let src = written
                .iter()
                .rev()
                .nth(back)
                .copied()
                .unwrap_or(Reg::new(2));
            let dst = Reg::new(dst);
            out.push(Instruction::rrr(Opcode::Addu, dst, src, Reg::new(3)));
            written.push(dst);
        }
        out
    })
}

proptest! {
    /// Every instruction either lands in exactly one FIFO or stalls; FIFO
    /// contents stay in dispatch order; occupancy is conserved.
    #[test]
    fn steering_conserves_and_orders(insts in arb_stream(), fifos in 1usize..10, depth in 1usize..10) {
        let mut pool = FifoPool::new(PoolConfig { fifos, depth, clusters: 1 });
        let mut steerer = DependenceSteerer::new();
        let mut placed: HashMap<InstId, FifoId> = HashMap::new();

        for (i, inst) in insts.iter().enumerate() {
            let id = InstId(i as u64);
            match steerer.steer(id, inst, &mut pool) {
                SteerOutcome::Fifo(f) => {
                    placed.insert(id, f);
                }
                SteerOutcome::Stall => {
                    // Full machine: drain one head and continue.
                    let first_head = pool.heads().next();
                    if let Some((f, head)) = first_head {
                        pool.pop_head(f);
                        steerer.on_issue(head);
                        placed.remove(&head);
                    }
                }
            }
            // Invariant: every placed instruction is in exactly the FIFO
            // recorded, in increasing dispatch order.
            let mut seen = 0;
            for fifo in 0..fifos {
                let entries: Vec<InstId> = pool
                    .entries()
                    .filter(|(f, _, _)| *f == FifoId(fifo))
                    .map(|(_, _, id)| id)
                    .collect();
                prop_assert!(entries.windows(2).all(|w| w[0] < w[1]), "FIFO order");
                for id in &entries {
                    prop_assert_eq!(placed.get(id), Some(&FifoId(fifo)));
                    seen += 1;
                }
            }
            prop_assert_eq!(seen, placed.len(), "no instruction lost or duplicated");
            prop_assert_eq!(pool.occupancy(), placed.len());
        }
    }

    /// The defining property of the heuristic: an instruction whose single
    /// outstanding producer sits at a FIFO tail (with room) joins that
    /// FIFO.
    #[test]
    fn chains_extend_tail_fifos(back_to_back in 2usize..20) {
        let mut pool = FifoPool::new(PoolConfig { fifos: 8, depth: 32, clusters: 1 });
        let mut steerer = DependenceSteerer::new();
        let mut last_fifo = None;
        for i in 0..back_to_back {
            let inst = Instruction::rrr(
                Opcode::Addu,
                Reg::new(10),
                if i == 0 { Reg::new(2) } else { Reg::new(10) },
                Reg::new(3),
            );
            match steerer.steer(InstId(i as u64), &inst, &mut pool) {
                SteerOutcome::Fifo(f) => {
                    if let Some(prev) = last_fifo {
                        prop_assert_eq!(prev, f, "chain must stay in one FIFO");
                    }
                    last_fifo = Some(f);
                }
                SteerOutcome::Stall => prop_assert!(false, "cannot stall: depth 32"),
            }
        }
    }

    /// Random steering never loses instructions either, and fills to exact
    /// capacity.
    #[test]
    fn random_steering_fills_to_capacity(seed in 0u64..500, fifos in 1usize..8, depth in 1usize..8) {
        let mut pool = FifoPool::new(PoolConfig { fifos, depth, clusters: 1 });
        let mut steerer = RandomSteerer::new(seed);
        let capacity = fifos * depth;
        for i in 0..capacity {
            prop_assert!(matches!(
                steerer.steer(InstId(i as u64), &mut pool),
                SteerOutcome::Fifo(_)
            ));
        }
        prop_assert_eq!(pool.occupancy(), capacity);
        prop_assert_eq!(steerer.steer(InstId(9999), &mut pool), SteerOutcome::Stall);
    }

    /// Draining any interleaving of heads always frees every FIFO.
    #[test]
    fn draining_restores_all_free(insts in arb_stream()) {
        let mut pool = FifoPool::new(PoolConfig { fifos: 4, depth: 16, clusters: 2 });
        let mut steerer = DependenceSteerer::new();
        for (i, inst) in insts.iter().enumerate() {
            let _ = steerer.steer(InstId(i as u64), inst, &mut pool);
        }
        while pool.occupancy() > 0 {
            let (f, id) = pool.heads().next().expect("occupied pool has a head");
            pool.pop_head(f);
            steerer.on_issue(id);
        }
        prop_assert_eq!(pool.free_count(), 4);
    }
}
