//! Alternative steering heuristics (Section 5.1 notes "a number of
//! heuristics are possible"; this module makes the design space concrete).
//!
//! All variants implement the same shape as
//! [`DependenceSteerer`](crate::steering::DependenceSteerer) — steer one
//! instruction, get a [`SteerOutcome`] — so the simulator can swap them in:
//!
//! * [`RoundRobinSteerer`] — dependence-blind striping, a midpoint between
//!   the paper's heuristic and random steering: balanced load, zero chain
//!   awareness.
//! * [`LoadBalancedSteerer`] — dependence-aware like the paper's, but when
//!   a fresh FIFO is needed it picks the cluster with the *lowest
//!   occupancy* instead of the free-list/affinity order, trading bypass
//!   locality for issue bandwidth.

use crate::fifos::FifoPool;
use crate::steering::SteerOutcome;
use crate::{FifoId, InstId};
use ce_isa::{Instruction, Reg};

/// Dependence-blind round-robin striping across FIFOs.
///
/// Spreads consecutive instructions over the FIFOs in order, skipping full
/// ones. Like random steering it ignores chains, but unlike random it is
/// perfectly balanced — isolating *balance* from *dependence awareness* in
/// the Figure 17 comparison.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinSteerer {
    next: usize,
}

impl RoundRobinSteerer {
    /// Creates a round-robin steerer starting at FIFO 0.
    pub fn new() -> RoundRobinSteerer {
        RoundRobinSteerer::default()
    }

    /// Steers one instruction to the next FIFO with room.
    pub fn steer(&mut self, inst_id: InstId, pool: &mut FifoPool) -> SteerOutcome {
        let fifos = pool.config().fifos;
        for offset in 0..fifos {
            let fifo = FifoId((self.next + offset) % fifos);
            if !pool.is_fifo_full(fifo) {
                pool.claim(fifo);
                pool.push(fifo, inst_id);
                self.next = (fifo.0 + 1) % fifos;
                return SteerOutcome::Fifo(fifo);
            }
        }
        SteerOutcome::Stall
    }
}

/// One `SRC_FIFO` entry for the load-balanced variant.
#[derive(Debug, Clone, Copy)]
struct Producer {
    fifo: FifoId,
    inst: InstId,
}

/// Dependence-aware steering with occupancy-balanced FIFO acquisition.
///
/// Cases 1–3 of the paper's heuristic are unchanged; only the "new FIFO"
/// fallback differs: the emptiest cluster donates the FIFO. Compared to
/// the paper's policy this reduces dispatch stalls on chain-poor code but
/// sends more values across clusters.
#[derive(Debug, Clone, Default)]
pub struct LoadBalancedSteerer {
    src_fifo: [Option<Producer>; Reg::COUNT],
}

impl LoadBalancedSteerer {
    /// Creates a steerer with an empty `SRC_FIFO` table.
    pub fn new() -> LoadBalancedSteerer {
        LoadBalancedSteerer::default()
    }

    /// Steers one instruction.
    pub fn steer(
        &mut self,
        inst_id: InstId,
        inst: &Instruction,
        pool: &mut FifoPool,
    ) -> SteerOutcome {
        let [left, right] = inst.uses();
        let mut target = None;
        for src in [left, right].into_iter().flatten() {
            if let Some(p) = self.src_fifo[src.index()] {
                let still_there = pool.contains(p.fifo, p.inst);
                if still_there && pool.tail(p.fifo) == Some(p.inst) && !pool.is_fifo_full(p.fifo)
                {
                    target = Some(p.fifo);
                    break;
                }
            }
        }
        let fifo = match target.or_else(|| self.emptiest_cluster_fifo(pool)) {
            Some(f) => f,
            None => return SteerOutcome::Stall,
        };
        pool.push(fifo, inst_id);
        if let Some(dest) = inst.defs() {
            self.src_fifo[dest.index()] = Some(Producer { fifo, inst: inst_id });
        }
        SteerOutcome::Fifo(fifo)
    }

    fn emptiest_cluster_fifo(&self, pool: &mut FifoPool) -> Option<FifoId> {
        let clusters = pool.config().clusters;
        let mut order: Vec<usize> = (0..clusters).collect();
        order.sort_by_key(|&c| pool.cluster_occupancy(c));
        for cluster in order {
            if let Some(f) = pool.acquire_preferring(Some(cluster)) {
                return Some(f);
            }
        }
        None
    }

    /// Clears the table (pipeline flush).
    pub fn on_squash(&mut self) {
        self.src_fifo = [None; Reg::COUNT];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifos::PoolConfig;
    use ce_isa::Opcode;

    fn alu(dst: u8, a: u8, b: u8) -> Instruction {
        Instruction::rrr(Opcode::Addu, Reg::new(dst), Reg::new(a), Reg::new(b))
    }

    #[test]
    fn round_robin_stripes_in_order() {
        let mut pool = FifoPool::new(PoolConfig { fifos: 4, depth: 2, clusters: 1 });
        let mut s = RoundRobinSteerer::new();
        let mut fifos = Vec::new();
        for i in 0..4u64 {
            match s.steer(InstId(i), &mut pool) {
                SteerOutcome::Fifo(f) => fifos.push(f.0),
                SteerOutcome::Stall => panic!("room exists"),
            }
        }
        assert_eq!(fifos, vec![0, 1, 2, 3]);
    }

    #[test]
    fn round_robin_skips_full_fifos_and_stalls_when_packed() {
        let mut pool = FifoPool::new(PoolConfig { fifos: 2, depth: 1, clusters: 1 });
        let mut s = RoundRobinSteerer::new();
        assert!(matches!(s.steer(InstId(0), &mut pool), SteerOutcome::Fifo(FifoId(0))));
        assert!(matches!(s.steer(InstId(1), &mut pool), SteerOutcome::Fifo(FifoId(1))));
        assert_eq!(s.steer(InstId(2), &mut pool), SteerOutcome::Stall);
    }

    #[test]
    fn load_balanced_still_chains_dependents() {
        let mut pool = FifoPool::new(PoolConfig { fifos: 4, depth: 4, clusters: 2 });
        let mut s = LoadBalancedSteerer::new();
        let a = s.steer(InstId(0), &alu(10, 1, 2), &mut pool);
        let b = s.steer(InstId(1), &alu(11, 10, 3), &mut pool);
        assert_eq!(a, b, "chain stays together");
    }

    #[test]
    fn load_balanced_prefers_the_emptier_cluster() {
        let mut pool = FifoPool::new(PoolConfig { fifos: 4, depth: 4, clusters: 2 });
        let mut s = LoadBalancedSteerer::new();
        // Three independent chains: first two land somewhere; by the third,
        // whichever cluster is lighter must receive it.
        let mut clusters = Vec::new();
        for i in 0..4u64 {
            match s.steer(InstId(i), &alu(10 + i as u8, 1, 2), &mut pool) {
                SteerOutcome::Fifo(f) => clusters.push(pool.cluster_of(f)),
                SteerOutcome::Stall => panic!("room exists"),
            }
        }
        let c0 = clusters.iter().filter(|&&c| c == 0).count();
        let c1 = clusters.iter().filter(|&&c| c == 1).count();
        assert_eq!(c0, 2, "perfectly balanced: {clusters:?}");
        assert_eq!(c1, 2, "perfectly balanced: {clusters:?}");
    }

    #[test]
    fn load_balanced_squash_resets() {
        let mut pool = FifoPool::new(PoolConfig { fifos: 2, depth: 4, clusters: 1 });
        let mut s = LoadBalancedSteerer::new();
        let _ = s.steer(InstId(0), &alu(10, 1, 2), &mut pool);
        s.on_squash();
        let mut fresh = FifoPool::new(pool.config());
        // Dependent of r10 now steers as if ready (table cleared).
        assert!(matches!(
            s.steer(InstId(1), &alu(11, 10, 3), &mut fresh),
            SteerOutcome::Fifo(_)
        ));
    }
}
