//! The issue-FIFO pool (paper Sections 5, 5.5).
//!
//! A pool of small in-order FIFOs, optionally partitioned into clusters.
//! Free (empty) FIFOs are handed out by [`FifoPool::acquire`] following the
//! paper's Section 5.5 policy: one free list per cluster; requests are
//! served from the *current* cluster's list, and when it runs dry the other
//! cluster's list becomes current — keeping dynamically-adjacent
//! instructions in the same cluster to minimize inter-cluster bypasses.

use crate::{FifoId, InstId};
use std::collections::VecDeque;

/// Static configuration of a FIFO pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Total number of FIFOs.
    pub fifos: usize,
    /// Capacity of each FIFO.
    pub depth: usize,
    /// Number of clusters the FIFOs are striped across (1 = unclustered).
    pub clusters: usize,
}

impl PoolConfig {
    /// The paper's 8-way configuration: 8 FIFOs × 8 entries, one cluster.
    pub fn paper_default() -> PoolConfig {
        PoolConfig { fifos: 8, depth: 8, clusters: 1 }
    }

    /// The paper's clustered configuration (Section 5.4): 2 clusters of
    /// 4 FIFOs × 8 entries.
    pub fn paper_clustered() -> PoolConfig {
        PoolConfig { fifos: 8, depth: 8, clusters: 2 }
    }

    /// FIFOs per cluster.
    pub fn fifos_per_cluster(&self) -> usize {
        self.fifos / self.clusters
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Describes the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.fifos == 0 || self.depth == 0 || self.clusters == 0 {
            return Err("fifos, depth, and clusters must all be positive".into());
        }
        if !self.fifos.is_multiple_of(self.clusters) {
            return Err(format!(
                "{} clusters must evenly divide {} FIFOs",
                self.clusters, self.fifos
            ));
        }
        if self.fifos > 128 {
            return Err(format!(
                "{} FIFOs exceed the supported maximum of 128",
                self.fifos
            ));
        }
        Ok(())
    }
}

/// The pool of issue FIFOs.
///
/// ```
/// use ce_core::fifos::{FifoPool, PoolConfig};
/// use ce_core::InstId;
///
/// let mut pool = FifoPool::new(PoolConfig::paper_default());
/// let fifo = pool.acquire().expect("fresh pool has free FIFOs");
/// pool.push(fifo, InstId(0));
/// pool.push(fifo, InstId(1));
/// // Only the head is visible to wakeup/select.
/// assert_eq!(pool.heads().count(), 1);
/// assert_eq!(pool.pop_head(fifo), Some(InstId(0)));
/// ```
#[derive(Debug, Clone)]
pub struct FifoPool {
    config: PoolConfig,
    queues: Vec<VecDeque<InstId>>,
    /// Free (empty, unowned) FIFOs per cluster.
    free: Vec<Vec<FifoId>>,
    /// Cluster whose free list is serviced first.
    current_cluster: usize,
    /// Bit `f` set iff FIFO `f` is non-empty — maintained incrementally so
    /// the per-cycle head scan touches only occupied FIFOs instead of
    /// rescanning every queue (`validate` caps pools at 128 FIFOs).
    occupied: u128,
    /// Total buffered instructions (incremental; `occupancy` is O(1)).
    len: usize,
    /// Buffered instructions per cluster (incremental).
    cluster_len: Vec<usize>,
}

impl FifoPool {
    /// Creates a pool with every FIFO free.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: PoolConfig) -> FifoPool {
        if let Err(msg) = config.validate() {
            panic!("invalid FIFO pool configuration: {msg}");
        }
        let mut free = vec![Vec::new(); config.clusters];
        // Reverse order so acquire() hands out low-numbered FIFOs first.
        for f in (0..config.fifos).rev() {
            free[f / config.fifos_per_cluster()].push(FifoId(f));
        }
        FifoPool {
            config,
            queues: vec![VecDeque::new(); config.fifos],
            free,
            current_cluster: 0,
            occupied: 0,
            len: 0,
            cluster_len: vec![0; config.clusters],
        }
    }

    /// The pool's configuration.
    pub fn config(&self) -> PoolConfig {
        self.config
    }

    /// The cluster a FIFO belongs to.
    pub fn cluster_of(&self, fifo: FifoId) -> usize {
        fifo.0 / self.config.fifos_per_cluster()
    }

    /// Acquires a free FIFO using the two-free-list policy; `None` when no
    /// FIFO is free anywhere (dispatch must stall).
    pub fn acquire(&mut self) -> Option<FifoId> {
        self.acquire_preferring(None)
    }

    /// Acquires a free FIFO, first trying `preferred` cluster (dependence
    /// affinity: a consumer whose producer ran in cluster `c` wants its
    /// new FIFO there so the value arrives over the fast local bypass),
    /// then falling back to the two-free-list policy.
    pub fn acquire_preferring(&mut self, preferred: Option<usize>) -> Option<FifoId> {
        if let Some(cluster) = preferred {
            if let Some(f) = self.free[cluster].pop() {
                return Some(f);
            }
        }
        for attempt in 0..self.config.clusters {
            let cluster = (self.current_cluster + attempt) % self.config.clusters;
            if let Some(f) = self.free[cluster].pop() {
                // Switching only happens when the current list was dry.
                self.current_cluster = cluster;
                return Some(f);
            }
        }
        None
    }

    /// Claims a specific FIFO out of the free lists (no-op if it is not
    /// free). Policies that bypass the free-list discipline (random
    /// steering) use this before pushing into an empty FIFO of their own
    /// choosing.
    pub fn claim(&mut self, fifo: FifoId) {
        let cluster = self.cluster_of(fifo);
        self.free[cluster].retain(|&f| f != fifo);
    }

    /// Whether a FIFO has no instructions.
    pub fn is_fifo_empty(&self, fifo: FifoId) -> bool {
        self.queues[fifo.0].is_empty()
    }

    /// Whether a FIFO is at capacity.
    pub fn is_fifo_full(&self, fifo: FifoId) -> bool {
        self.queues[fifo.0].len() >= self.config.depth
    }

    /// The instruction at the head (next to issue), if any.
    pub fn head(&self, fifo: FifoId) -> Option<InstId> {
        self.queues[fifo.0].front().copied()
    }

    /// The instruction at the tail (most recently pushed), if any.
    pub fn tail(&self, fifo: FifoId) -> Option<InstId> {
        self.queues[fifo.0].back().copied()
    }

    /// Pushes an instruction onto a FIFO's tail.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is full — callers must check
    /// [`is_fifo_full`](Self::is_fifo_full) (the steering heuristic does).
    pub fn push(&mut self, fifo: FifoId, inst: InstId) {
        assert!(!self.is_fifo_full(fifo), "push into full {fifo}");
        self.queues[fifo.0].push_back(inst);
        self.occupied |= 1u128 << fifo.0;
        self.len += 1;
        let cluster = self.cluster_of(fifo);
        self.cluster_len[cluster] += 1;
    }

    /// Pops the head of a FIFO (in-order issue). Returns the FIFO to the
    /// free pool if it drains.
    pub fn pop_head(&mut self, fifo: FifoId) -> Option<InstId> {
        let popped = self.queues[fifo.0].pop_front();
        if popped.is_some() {
            self.len -= 1;
            let cluster = self.cluster_of(fifo);
            self.cluster_len[cluster] -= 1;
            self.maybe_free(fifo);
        }
        popped
    }

    /// Removes an instruction from anywhere in a FIFO — used when the pool
    /// models *conceptual* FIFOs over a flexible window (Section 5.6.2),
    /// where issue is not restricted to the head. Returns whether the
    /// instruction was present.
    pub fn remove(&mut self, fifo: FifoId, inst: InstId) -> bool {
        let queue = &mut self.queues[fifo.0];
        match queue.iter().position(|&i| i == inst) {
            Some(pos) => {
                queue.remove(pos);
                self.len -= 1;
                let cluster = self.cluster_of(fifo);
                self.cluster_len[cluster] -= 1;
                self.maybe_free(fifo);
                true
            }
            None => false,
        }
    }

    /// Whether `inst` currently sits anywhere in `fifo` — an O(depth) probe
    /// of one queue, replacing full-pool scans in the steering heuristics'
    /// staleness checks.
    pub fn contains(&self, fifo: FifoId, inst: InstId) -> bool {
        self.queues[fifo.0].iter().any(|&i| i == inst)
    }

    /// The position of `inst` within `fifo` (0 = head), if present —
    /// exposes queue order to external invariant checkers.
    pub fn position_of(&self, fifo: FifoId, inst: InstId) -> Option<usize> {
        self.queues[fifo.0].iter().position(|&i| i == inst)
    }

    /// Number of instructions buffered in one FIFO.
    pub fn fifo_len(&self, fifo: FifoId) -> usize {
        self.queues[fifo.0].len()
    }

    fn maybe_free(&mut self, fifo: FifoId) {
        if self.queues[fifo.0].is_empty() {
            self.occupied &= !(1u128 << fifo.0);
            let cluster = self.cluster_of(fifo);
            self.free[cluster].push(fifo);
        }
    }

    /// Iterates over the heads of all non-empty FIFOs — the only
    /// instructions wakeup/select ever examines in the dependence-based
    /// design. Driven by the incrementally maintained occupancy mask, in
    /// ascending FIFO order (the same order a full scan produced).
    pub fn heads(&self) -> impl Iterator<Item = (FifoId, InstId)> + '_ {
        let mut mask = self.occupied;
        std::iter::from_fn(move || {
            if mask == 0 {
                return None;
            }
            let f = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            Some((FifoId(f), self.queues[f][0]))
        })
    }

    /// Iterates over every (fifo, position, instruction) triple.
    pub fn entries(&self) -> impl Iterator<Item = (FifoId, usize, InstId)> + '_ {
        self.queues.iter().enumerate().flat_map(|(i, q)| {
            q.iter().enumerate().map(move |(pos, &inst)| (FifoId(i), pos, inst))
        })
    }

    /// Iterates over every (fifo, instruction) pair in ascending
    /// instruction order — a k-way merge of the per-FIFO queues. Each
    /// queue is ascending by construction (dispatch appends in program
    /// order; issue and squash remove without reordering), so the merge
    /// yields exactly [`entries`](Self::entries) sorted by instruction id,
    /// without a sort.
    pub fn entries_aged(&self) -> impl Iterator<Item = (FifoId, InstId)> + '_ {
        let mut pos = [0usize; 128];
        let mut live = self.occupied;
        std::iter::from_fn(move || {
            let mut best: Option<(InstId, usize)> = None;
            let mut m = live;
            while m != 0 {
                let f = m.trailing_zeros() as usize;
                m &= m - 1;
                if pos[f] == self.queues[f].len() {
                    live &= !(1u128 << f); // exhausted
                    continue;
                }
                let id = self.queues[f][pos[f]];
                if best.is_none_or(|(b, _)| id < b) {
                    best = Some((id, f));
                }
            }
            let (id, f) = best?;
            pos[f] += 1;
            Some((FifoId(f), id))
        })
    }

    /// Total instructions currently buffered.
    pub fn occupancy(&self) -> usize {
        debug_assert_eq!(self.len, self.queues.iter().map(VecDeque::len).sum::<usize>());
        self.len
    }

    /// Instructions currently buffered in one cluster's FIFOs.
    pub fn cluster_occupancy(&self, cluster: usize) -> usize {
        self.cluster_len[cluster]
    }

    /// Number of free FIFOs across all clusters.
    pub fn free_count(&self) -> usize {
        self.free.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(fifos: usize, depth: usize, clusters: usize) -> FifoPool {
        FifoPool::new(PoolConfig { fifos, depth, clusters })
    }

    #[test]
    fn acquire_prefers_current_cluster() {
        let mut p = pool(4, 2, 2);
        // Cluster 0 holds FIFOs 0–1, cluster 1 holds 2–3.
        let a = p.acquire().unwrap();
        let b = p.acquire().unwrap();
        assert_eq!(p.cluster_of(a), 0);
        assert_eq!(p.cluster_of(b), 0);
        // Keep them non-empty so they are not returned to the free lists.
        p.push(a, InstId(0));
        p.push(b, InstId(1));
        // Cluster 0 exhausted: the pool switches to cluster 1.
        let c = p.acquire().unwrap();
        assert_eq!(p.cluster_of(c), 1);
        p.push(c, InstId(2));
        // And stays there while it has free FIFOs.
        let d = p.acquire().unwrap();
        assert_eq!(p.cluster_of(d), 1);
        p.push(d, InstId(3));
        assert_eq!(p.acquire(), None);
    }

    #[test]
    fn drained_fifo_returns_to_free_pool() {
        let mut p = pool(2, 4, 1);
        let f = p.acquire().unwrap();
        assert_eq!(p.free_count(), 1);
        p.push(f, InstId(0));
        p.push(f, InstId(1));
        assert_eq!(p.pop_head(f), Some(InstId(0)));
        assert_eq!(p.free_count(), 1, "still occupied");
        assert_eq!(p.pop_head(f), Some(InstId(1)));
        assert_eq!(p.free_count(), 2, "drained FIFO freed");
        assert_eq!(p.pop_head(f), None);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut p = pool(1, 8, 1);
        let f = p.acquire().unwrap();
        for i in 0..5 {
            p.push(f, InstId(i));
        }
        assert_eq!(p.head(f), Some(InstId(0)));
        assert_eq!(p.tail(f), Some(InstId(4)));
        for i in 0..5 {
            assert_eq!(p.pop_head(f), Some(InstId(i)));
        }
    }

    #[test]
    fn full_detection_and_push_panic() {
        let mut p = pool(1, 2, 1);
        let f = p.acquire().unwrap();
        p.push(f, InstId(0));
        assert!(!p.is_fifo_full(f));
        p.push(f, InstId(1));
        assert!(p.is_fifo_full(f));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.push(f, InstId(2));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn remove_from_middle_models_conceptual_fifos() {
        let mut p = pool(1, 8, 1);
        let f = p.acquire().unwrap();
        for i in 0..4 {
            p.push(f, InstId(i));
        }
        assert!(p.remove(f, InstId(2)));
        assert!(!p.remove(f, InstId(2)));
        let drained: Vec<InstId> = std::iter::from_fn(|| p.pop_head(f)).collect();
        assert_eq!(drained, vec![InstId(0), InstId(1), InstId(3)]);
    }

    #[test]
    fn heads_reports_only_nonempty_fifos() {
        let mut p = pool(3, 2, 1);
        let f0 = p.acquire().unwrap();
        let f1 = p.acquire().unwrap();
        p.push(f0, InstId(10));
        p.push(f1, InstId(20));
        p.push(f1, InstId(21));
        let heads: Vec<(FifoId, InstId)> = p.heads().collect();
        assert_eq!(heads, vec![(f0, InstId(10)), (f1, InstId(20))]);
        assert_eq!(p.occupancy(), 3);
        assert_eq!(p.entries().count(), 3);
    }

    #[test]
    fn position_of_reports_queue_order() {
        let mut p = pool(2, 4, 1);
        let f = p.acquire().unwrap();
        for i in 0..3 {
            p.push(f, InstId(i));
        }
        assert_eq!(p.position_of(f, InstId(0)), Some(0));
        assert_eq!(p.position_of(f, InstId(2)), Some(2));
        assert_eq!(p.position_of(f, InstId(9)), None);
        assert_eq!(p.fifo_len(f), 3);
        p.pop_head(f);
        assert_eq!(p.position_of(f, InstId(1)), Some(0));
        assert_eq!(p.fifo_len(f), 2);
    }

    #[test]
    #[should_panic(expected = "invalid FIFO pool configuration")]
    fn invalid_config_panics() {
        let _ = pool(8, 8, 3);
    }

    #[test]
    fn paper_defaults() {
        assert_eq!(PoolConfig::paper_default().fifos, 8);
        assert_eq!(PoolConfig::paper_clustered().fifos_per_cluster(), 4);
    }
}
