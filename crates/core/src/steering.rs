//! Instruction steering heuristics (paper Sections 5.1 and 5.6.3).
//!
//! [`DependenceSteerer`] implements the paper's three-case heuristic using
//! a `SRC_FIFO` table indexed by logical register:
//!
//! 1. all operands available → a new (free) FIFO;
//! 2. one outstanding operand produced by an instruction at the tail of
//!    FIFO `Fa` → `Fa` (the chain grows); otherwise a new FIFO;
//! 3. two outstanding operands → try the left operand's FIFO as in case 2,
//!    then the right's, then a new FIFO.
//!
//! If no suitable or free FIFO exists, dispatch stalls.
//!
//! [`RandomSteerer`] is the Section 5.6.3 control: instructions go to a
//! uniformly random FIFO with capacity, ignoring dependences — the paper
//! uses it to show that *dependence-aware* steering, not clustering itself,
//! is what preserves IPC.

use crate::fifos::FifoPool;
use crate::{FifoId, InstId};
use ce_isa::{Instruction, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where an instruction was steered, or that dispatch must stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteerOutcome {
    /// The instruction was pushed onto this FIFO.
    Fifo(FifoId),
    /// All candidate FIFOs were full/absent; dispatch stalls this cycle.
    Stall,
}

/// *How* a steering decision picked its FIFO — the observability side
/// channel of [`SteerOutcome`], consumed by pipeline probes. Policies that
/// ignore dependences report their policy name as the choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteerChoice {
    /// Chained behind an outstanding producer at the tail of its FIFO
    /// (heuristic cases 2/3); `operand` is which source matched (0 = left).
    Chained {
        /// Index of the matching source operand.
        operand: usize,
    },
    /// No suitable chain; a fresh FIFO in the cluster of a recent operand
    /// producer (bypass-locality affinity).
    FreshAffinity,
    /// No suitable chain and no affinity information; any fresh FIFO.
    Fresh,
    /// Uniformly random placement (the Section 5.6.3 control).
    Random,
    /// Dependence-blind round-robin striping.
    RoundRobin,
    /// Occupancy-balanced acquisition.
    Balanced,
}

/// The full explanation of one steering decision: the placement choice, or
/// why dispatch stalled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteerExplain {
    /// The instruction was placed; how is in the [`SteerChoice`].
    Placed(SteerChoice),
    /// No suitable or free FIFO existed. `chain_full` reports whether a
    /// dependence-chain target *did* exist but its FIFO was full — the
    /// interesting rejection for steering diagnostics.
    Stalled {
        /// A chain target existed but had no room.
        chain_full: bool,
    },
}

/// One `SRC_FIFO` table entry: the FIFO holding the producer of a logical
/// register, and which dynamic instruction that producer is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Producer {
    fifo: FifoId,
    inst: InstId,
}

/// The Section 5.1 dependence-steering heuristic.
///
/// The steerer owns the `SRC_FIFO` table. Callers must keep it informed of
/// the pipeline's progress:
///
/// * [`steer`](Self::steer) at dispatch (in program order within a group —
///   the table is updated as each instruction is steered, exactly like the
///   rename-stage hardware);
/// * [`on_issue`](Self::on_issue) when an instruction leaves its FIFO, so
///   stale producers no longer attract dependents;
/// * [`on_squash`](Self::on_squash) to reset on a pipeline flush.
#[derive(Debug, Clone, Default)]
pub struct DependenceSteerer {
    src_fifo: [Option<Producer>; Reg::COUNT],
}

impl DependenceSteerer {
    /// Creates a steerer with an empty `SRC_FIFO` table.
    pub fn new() -> DependenceSteerer {
        DependenceSteerer::default()
    }

    /// Steers one instruction, pushing it onto the chosen FIFO and
    /// updating the `SRC_FIFO` table.
    pub fn steer(
        &mut self,
        inst_id: InstId,
        inst: &Instruction,
        pool: &mut FifoPool,
    ) -> SteerOutcome {
        self.steer_explained(inst_id, inst, pool).0
    }

    /// Like [`steer`](Self::steer), additionally explaining the decision —
    /// which heuristic case placed the instruction, or why it stalled.
    /// Identical placement behaviour; the explanation is a by-product of
    /// work the heuristic already does.
    pub fn steer_explained(
        &mut self,
        inst_id: InstId,
        inst: &Instruction,
        pool: &mut FifoPool,
    ) -> (SteerOutcome, SteerExplain) {
        let [left, right] = inst.uses();
        let candidates = [left, right].map(|src| self.outstanding_producer(src, pool));

        let mut target: Option<(FifoId, usize)> = None;
        let mut chain_full = false;
        for (operand, producer) in candidates.into_iter().enumerate() {
            let Some(producer) = producer else { continue };
            // Suitable iff the producer is still the FIFO tail (nothing
            // behind it) and the FIFO has room.
            if pool.tail(producer.fifo) == Some(producer.inst) {
                if !pool.is_fifo_full(producer.fifo) {
                    target = Some((producer.fifo, operand));
                    break;
                }
                chain_full = true;
            }
        }
        // When no FIFO is suitable, prefer a fresh FIFO in the cluster of
        // the most recent producer of one of our operands (even one that
        // has already issued): the value will arrive over that cluster's
        // fast local bypass.
        let affinity = [left, right]
            .iter()
            .flatten()
            .filter_map(|r| self.src_fifo[r.index()])
            .map(|p| pool.cluster_of(p.fifo))
            .next();
        let (fifo, choice) = match target {
            Some((fifo, operand)) => (fifo, SteerChoice::Chained { operand }),
            None => match pool.acquire_preferring(affinity) {
                Some(fifo) => {
                    let choice = if affinity.is_some() {
                        SteerChoice::FreshAffinity
                    } else {
                        SteerChoice::Fresh
                    };
                    (fifo, choice)
                }
                None => return (SteerOutcome::Stall, SteerExplain::Stalled { chain_full }),
            },
        };
        pool.push(fifo, inst_id);
        if let Some(dest) = inst.defs() {
            self.src_fifo[dest.index()] = Some(Producer { fifo, inst: inst_id });
        }
        (SteerOutcome::Fifo(fifo), SteerExplain::Placed(choice))
    }

    /// Looks up the outstanding producer of a source register, validating
    /// that it is still waiting in its FIFO.
    fn outstanding_producer(&self, src: Option<Reg>, pool: &FifoPool) -> Option<Producer> {
        let producer = self.src_fifo[src?.index()]?;
        // The entry may be stale: the producer may have issued already (the
        // table is "invalid" in the paper's terms once the value is
        // computed). Validate against the producer's own FIFO contents.
        pool.contains(producer.fifo, producer.inst).then_some(producer)
    }

    /// Invalidates `SRC_FIFO` entries naming an instruction that has left
    /// its FIFO (issued or squashed).
    pub fn on_issue(&mut self, inst_id: InstId) {
        for entry in self.src_fifo.iter_mut() {
            if entry.map(|p| p.inst) == Some(inst_id) {
                *entry = None;
            }
        }
    }

    /// Clears the whole table (pipeline flush).
    pub fn on_squash(&mut self) {
        self.src_fifo = [None; Reg::COUNT];
    }
}

/// The Section 5.6.3 random-steering control policy.
///
/// Picks a uniformly random FIFO with spare capacity (the paper's version
/// picks a random *cluster window* and falls back to the other when full;
/// with the pool abstraction that is the same thing).
#[derive(Debug, Clone)]
pub struct RandomSteerer {
    rng: StdRng,
}

impl RandomSteerer {
    /// Creates a random steerer with the given seed (runs are repeatable).
    pub fn new(seed: u64) -> RandomSteerer {
        RandomSteerer { rng: StdRng::seed_from_u64(seed) }
    }

    /// Steers one instruction to a random non-full FIFO.
    pub fn steer(&mut self, inst_id: InstId, pool: &mut FifoPool) -> SteerOutcome {
        let fifos = pool.config().fifos;
        let start = self.rng.gen_range(0..fifos);
        for offset in 0..fifos {
            let fifo = FifoId((start + offset) % fifos);
            if !pool.is_fifo_full(fifo) {
                // Random steering ignores the free-list discipline; claim
                // the FIFO directly if it was sitting in a free list.
                pool.claim(fifo);
                pool.push(fifo, inst_id);
                return SteerOutcome::Fifo(fifo);
            }
        }
        SteerOutcome::Stall
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifos::PoolConfig;
    use ce_isa::Opcode;

    fn alu(dst: u8, a: u8, b: u8) -> Instruction {
        Instruction::rrr(Opcode::Addu, Reg::new(dst), Reg::new(a), Reg::new(b))
    }

    fn pool(fifos: usize, depth: usize) -> FifoPool {
        FifoPool::new(PoolConfig { fifos, depth, clusters: 1 })
    }

    fn steer_all(
        steerer: &mut DependenceSteerer,
        pool: &mut FifoPool,
        insts: &[Instruction],
    ) -> Vec<SteerOutcome> {
        insts
            .iter()
            .enumerate()
            .map(|(i, inst)| steerer.steer(InstId(i as u64), inst, pool))
            .collect()
    }

    #[test]
    fn independent_instructions_get_separate_fifos() {
        let mut s = DependenceSteerer::new();
        let mut p = pool(4, 4);
        let outcomes = steer_all(&mut s, &mut p, &[alu(10, 1, 2), alu(11, 3, 4)]);
        let [SteerOutcome::Fifo(a), SteerOutcome::Fifo(b)] = outcomes[..] else {
            panic!("both should steer");
        };
        assert_ne!(a, b);
    }

    #[test]
    fn dependence_chain_shares_one_fifo() {
        let mut s = DependenceSteerer::new();
        let mut p = pool(4, 4);
        // 10 -> 11 -> 12 -> 13: a pure chain.
        let outcomes = steer_all(
            &mut s,
            &mut p,
            &[alu(10, 1, 2), alu(11, 10, 3), alu(12, 11, 4), alu(13, 12, 5)],
        );
        let fifos: Vec<FifoId> = outcomes
            .iter()
            .map(|o| match o {
                SteerOutcome::Fifo(f) => *f,
                SteerOutcome::Stall => panic!("stall"),
            })
            .collect();
        assert!(fifos.windows(2).all(|w| w[0] == w[1]), "{fifos:?}");
        assert_eq!(p.occupancy(), 4);
    }

    #[test]
    fn producer_with_follower_forces_new_fifo() {
        // I2 depends on I0, but I1 (also dependent on I0) already sits
        // behind I0 — so I2 must go elsewhere.
        let mut s = DependenceSteerer::new();
        let mut p = pool(4, 4);
        let outcomes = steer_all(
            &mut s,
            &mut p,
            &[alu(10, 1, 2), alu(11, 10, 3), alu(12, 10, 4)],
        );
        let [SteerOutcome::Fifo(f0), SteerOutcome::Fifo(f1), SteerOutcome::Fifo(f2)] =
            outcomes[..]
        else {
            panic!("all should steer");
        };
        assert_eq!(f0, f1);
        assert_ne!(f2, f0);
    }

    #[test]
    fn two_outstanding_operands_prefer_left_then_right() {
        let mut s = DependenceSteerer::new();
        let mut p = pool(4, 4);
        // Two independent producers, then a consumer of both.
        let outcomes = steer_all(
            &mut s,
            &mut p,
            &[alu(10, 1, 2), alu(11, 3, 4), alu(12, 10, 11)],
        );
        let [SteerOutcome::Fifo(f0), SteerOutcome::Fifo(_f1), SteerOutcome::Fifo(f2)] =
            outcomes[..]
        else {
            panic!("all should steer");
        };
        // Left operand (r10, produced into f0) wins.
        assert_eq!(f2, f0);
    }

    #[test]
    fn right_operand_used_when_left_unsuitable() {
        let mut s = DependenceSteerer::new();
        let mut p = pool(4, 4);
        let outcomes = steer_all(
            &mut s,
            &mut p,
            &[
                alu(10, 1, 2),  // producer A (left source of I3)
                alu(11, 3, 4),  // producer B (right source of I3)
                alu(13, 10, 5), // occupies the slot behind A
                alu(12, 10, 11),
            ],
        );
        let fifo = |i: usize| match outcomes[i] {
            SteerOutcome::Fifo(f) => f,
            SteerOutcome::Stall => panic!("stall"),
        };
        assert_eq!(fifo(2), fifo(0), "I2 chains behind A");
        assert_eq!(fifo(3), fifo(1), "left blocked, so I3 chains behind B");
    }

    #[test]
    fn issued_producer_no_longer_attracts() {
        let mut s = DependenceSteerer::new();
        let mut p = pool(4, 4);
        steer_all(&mut s, &mut p, &[alu(10, 1, 2)]);
        // The producer issues and leaves its FIFO.
        let f = FifoId(0);
        assert_eq!(p.pop_head(f), Some(InstId(0)));
        s.on_issue(InstId(0));
        // A dependent arrives afterwards: it must get a fresh FIFO rather
        // than chaining behind a ghost.
        let outcome = s.steer(InstId(1), &alu(11, 10, 3), &mut p);
        assert!(matches!(outcome, SteerOutcome::Fifo(_)));
    }

    #[test]
    fn stalls_when_everything_is_full() {
        let mut s = DependenceSteerer::new();
        let mut p = pool(1, 1);
        assert!(matches!(s.steer(InstId(0), &alu(10, 1, 2), &mut p), SteerOutcome::Fifo(_)));
        assert_eq!(s.steer(InstId(1), &alu(11, 3, 4), &mut p), SteerOutcome::Stall);
    }

    #[test]
    fn full_producer_fifo_overflows_to_new_fifo() {
        let mut s = DependenceSteerer::new();
        let mut p = pool(2, 2);
        let outcomes = steer_all(
            &mut s,
            &mut p,
            &[alu(10, 1, 2), alu(11, 10, 3), alu(12, 11, 4)],
        );
        let fifo = |i: usize| match outcomes[i] {
            SteerOutcome::Fifo(f) => f,
            SteerOutcome::Stall => panic!("stall"),
        };
        assert_eq!(fifo(0), fifo(1));
        assert_ne!(fifo(2), fifo(1), "chain FIFO is full; overflow to a new one");
    }

    #[test]
    fn squash_clears_the_table() {
        let mut s = DependenceSteerer::new();
        let mut p = pool(4, 4);
        steer_all(&mut s, &mut p, &[alu(10, 1, 2)]);
        s.on_squash();
        // After the squash the pool is rebuilt too; a dependent of r10 now
        // steers as if its operand were ready.
        let mut fresh = FifoPool::new(p.config());
        let outcome = s.steer(InstId(5), &alu(11, 10, 3), &mut fresh);
        assert!(matches!(outcome, SteerOutcome::Fifo(_)));
    }

    #[test]
    fn figure12_example_groups_chains() {
        // The paper's Figure 12 code segment (registers renamed to our
        // numbering): the key property is that the chain 0→2 (via r18) and
        // the chain 4→5 (via r2/r16) each share a FIFO.
        let mut s = DependenceSteerer::new();
        let mut p = pool(4, 8);
        let insts = [
            /* 0: addu r18,r0,r2  */ alu(18, 0, 2),
            /* 1: addiu r2,r0,-1  */
            Instruction::imm(Opcode::Addiu, Reg::new(2), Reg::ZERO, -1),
            /* 2: beq r18,r2,L2   */
            Instruction::branch2(Opcode::Beq, Reg::new(18), Reg::new(2), 10),
            /* 3: lw r4,-32768(r28) */
            Instruction::mem(Opcode::Lw, Reg::new(4), -32768, Reg::new(28)),
            /* 4: sllv r2,r18,r20 */
            Instruction::shift_var(Opcode::Sllv, Reg::new(2), Reg::new(18), Reg::new(20)),
            /* 5: xor r16,r2,r19  */ alu(16, 2, 19),
        ];
        let outcomes = steer_all(&mut s, &mut p, &insts);
        let fifo = |i: usize| match outcomes[i] {
            SteerOutcome::Fifo(f) => f,
            SteerOutcome::Stall => panic!("stall"),
        };
        // beq chains behind its r18 producer (instruction 0).
        assert_eq!(fifo(2), fifo(0));
        // xor chains behind sllv, its r2 producer.
        assert_eq!(fifo(5), fifo(4));
        // The lw (no outstanding operands) gets a FIFO of its own.
        assert_ne!(fifo(3), fifo(0));
        assert_ne!(fifo(3), fifo(4));
    }

    #[test]
    fn steer_explained_reports_the_heuristic_case() {
        let mut s = DependenceSteerer::new();
        let mut p = pool(4, 4);
        // Case 1: no outstanding operands → fresh FIFO, no affinity.
        let (o0, e0) = s.steer_explained(InstId(0), &alu(10, 1, 2), &mut p);
        assert!(matches!(o0, SteerOutcome::Fifo(_)));
        assert_eq!(e0, SteerExplain::Placed(SteerChoice::Fresh));
        // Case 2: left operand outstanding at a FIFO tail → chained.
        let (_, e1) = s.steer_explained(InstId(1), &alu(11, 10, 3), &mut p);
        assert_eq!(e1, SteerExplain::Placed(SteerChoice::Chained { operand: 0 }));
        // Producer at the tail is r11 now; a consumer of r10 has a *stale*
        // tail and falls to a fresh FIFO — but with affinity for the
        // producer's cluster.
        let (_, e2) = s.steer_explained(InstId(2), &alu(12, 10, 4), &mut p);
        assert_eq!(e2, SteerExplain::Placed(SteerChoice::FreshAffinity));
        // Right-operand chaining reports operand index 1.
        let (_, _) = s.steer_explained(InstId(3), &alu(13, 5, 6), &mut p);
        let (_, e4) = s.steer_explained(InstId(4), &alu(14, 1, 13), &mut p);
        assert_eq!(e4, SteerExplain::Placed(SteerChoice::Chained { operand: 1 }));
    }

    #[test]
    fn steer_explained_reports_full_chains_on_stall() {
        let mut s = DependenceSteerer::new();
        let mut p = pool(1, 2);
        s.steer_explained(InstId(0), &alu(10, 1, 2), &mut p);
        s.steer_explained(InstId(1), &alu(11, 10, 3), &mut p);
        // The chain FIFO is full and it is the only FIFO: stall, and the
        // explanation says a chain target existed.
        let (o, e) = s.steer_explained(InstId(2), &alu(12, 11, 4), &mut p);
        assert_eq!(o, SteerOutcome::Stall);
        assert_eq!(e, SteerExplain::Stalled { chain_full: true });
    }

    #[test]
    fn steer_and_steer_explained_agree() {
        // Two identical steerers fed the same stream place identically —
        // the explanation is a by-product, not a behaviour change.
        let insts =
            [alu(10, 1, 2), alu(11, 10, 3), alu(12, 10, 4), alu(13, 12, 11), alu(14, 5, 6)];
        let mut s1 = DependenceSteerer::new();
        let mut p1 = pool(2, 2);
        let mut s2 = DependenceSteerer::new();
        let mut p2 = pool(2, 2);
        for (i, inst) in insts.iter().enumerate() {
            let plain = s1.steer(InstId(i as u64), inst, &mut p1);
            let (explained, _) = s2.steer_explained(InstId(i as u64), inst, &mut p2);
            assert_eq!(plain, explained, "instruction {i}");
        }
    }

    #[test]
    fn random_steering_is_reproducible_and_fills() {
        let mut p = pool(4, 2);
        let mut r = RandomSteerer::new(7);
        let mut placed = 0;
        for i in 0..8 {
            if matches!(r.steer(InstId(i), &mut p), SteerOutcome::Fifo(_)) {
                placed += 1;
            }
        }
        assert_eq!(placed, 8, "capacity 8 accommodates all");
        assert_eq!(r.steer(InstId(99), &mut p), SteerOutcome::Stall);
    }
}
