//! Identifier newtypes shared across the crate.

use std::fmt;

/// Identity of a dynamic instruction (its position in the dynamic stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstId(pub u64);

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Identity of an issue FIFO within a [`FifoPool`](crate::fifos::FifoPool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FifoId(pub usize);

impl fmt::Display for FifoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(InstId(7).to_string(), "i7");
        assert_eq!(FifoId(3).to_string(), "f3");
    }

    #[test]
    fn ordering_follows_sequence() {
        assert!(InstId(1) < InstId(2));
    }
}
