//! The reservation table: one ready bit per physical register
//! (paper Section 5.3).
//!
//! In the dependence-based microarchitecture, an instruction at a FIFO head
//! does not listen to tag broadcasts; it *interrogates* this table. The bit
//! for a physical register is set when the instruction that will write it
//! is dispatched, and cleared when the value is produced. An instruction is
//! ready when the bits for both its operands are clear.

/// Ready/busy state for every physical register.
///
/// ```
/// use ce_core::restable::ReservationTable;
///
/// let mut table = ReservationTable::new(120);
/// assert!(table.is_ready(5));
/// table.mark_pending(5);
/// assert!(!table.is_ready(5));
/// table.mark_available(5);
/// assert!(table.is_ready(5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReservationTable {
    // true = value pending (reservation bit set), false = value available.
    pending: Vec<bool>,
}

impl ReservationTable {
    /// Creates a table for `physical_regs` registers, all available.
    ///
    /// # Panics
    ///
    /// Panics if `physical_regs` is zero.
    pub fn new(physical_regs: usize) -> ReservationTable {
        assert!(physical_regs > 0, "need at least one physical register");
        ReservationTable { pending: vec![false; physical_regs] }
    }

    /// Number of physical registers covered.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether the table covers zero registers (never true).
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Marks a register as awaiting its value (set at dispatch).
    ///
    /// # Panics
    ///
    /// Panics if `preg` is out of range.
    pub fn mark_pending(&mut self, preg: usize) {
        self.pending[preg] = true;
    }

    /// Marks a register's value as produced (cleared at completion).
    ///
    /// # Panics
    ///
    /// Panics if `preg` is out of range.
    pub fn mark_available(&mut self, preg: usize) {
        self.pending[preg] = false;
    }

    /// Whether a register's value is available.
    ///
    /// # Panics
    ///
    /// Panics if `preg` is out of range.
    pub fn is_ready(&self, preg: usize) -> bool {
        !self.pending[preg]
    }

    /// Whether every register in `pregs` is available — the FIFO-head
    /// readiness test.
    pub fn all_ready<I: IntoIterator<Item = usize>>(&self, pregs: I) -> bool {
        pregs.into_iter().all(|p| self.is_ready(p))
    }

    /// Number of registers currently pending.
    pub fn pending_count(&self) -> usize {
        self.pending.iter().filter(|&&p| p).count()
    }

    /// Resets every register to available.
    pub fn clear(&mut self) {
        self.pending.fill(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_table_is_all_ready() {
        let table = ReservationTable::new(80);
        assert_eq!(table.len(), 80);
        assert!(table.all_ready(0..80));
        assert_eq!(table.pending_count(), 0);
    }

    #[test]
    fn pending_lifecycle() {
        let mut table = ReservationTable::new(8);
        table.mark_pending(3);
        table.mark_pending(5);
        assert!(!table.is_ready(3));
        assert!(!table.all_ready([1, 3]));
        assert!(table.all_ready([0, 1, 2]));
        assert_eq!(table.pending_count(), 2);
        table.mark_available(3);
        assert!(table.is_ready(3));
        assert_eq!(table.pending_count(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut table = ReservationTable::new(4);
        table.mark_pending(0);
        table.mark_pending(1);
        table.clear();
        assert_eq!(table.pending_count(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let mut table = ReservationTable::new(4);
        table.mark_pending(4);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_size_panics() {
        let _ = ReservationTable::new(0);
    }
}
