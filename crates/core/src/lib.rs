//! # ce-core — the dependence-based microarchitecture as a library
//!
//! The paper's proposal (Section 5) replaces the CAM-based issue window
//! with a small set of in-order FIFOs plus run-time *dependence steering*:
//! chains of dependent instructions land in the same FIFO, so only the
//! FIFO heads ever need wakeup and selection. This crate implements those
//! structures independently of any particular simulator:
//!
//! * [`FifoPool`](fifos::FifoPool) — the issue FIFOs, with the per-cluster
//!   free-list policy of Section 5.5,
//! * [`DependenceSteerer`](steering::DependenceSteerer) — the Section 5.1
//!   steering heuristic driven by a `SRC_FIFO` table,
//! * [`RandomSteerer`](steering::RandomSteerer) — the Section 5.6.3
//!   baseline,
//! * [`ReservationTable`](restable::ReservationTable) — one ready bit per
//!   physical register, the FIFO-head wakeup mechanism of Section 5.3,
//! * [`analysis`] — clock-period and speedup arithmetic combining measured
//!   IPC with the `ce-delay` circuit models (Sections 5.3/5.5).
//!
//! ## Example
//!
//! Steering the paper's Figure 12 idiom — a dependent pair lands in one
//! FIFO, an independent instruction gets its own:
//!
//! ```
//! use ce_core::fifos::{FifoPool, PoolConfig};
//! use ce_core::steering::{DependenceSteerer, SteerOutcome};
//! use ce_core::InstId;
//! use ce_isa::{Instruction, Opcode, Reg};
//!
//! let mut pool = FifoPool::new(PoolConfig::paper_default());
//! let mut steerer = DependenceSteerer::new();
//!
//! let producer = Instruction::imm(Opcode::Addiu, Reg::new(10), Reg::ZERO, 1);
//! let consumer = Instruction::rrr(Opcode::Addu, Reg::new(11), Reg::new(10), Reg::ZERO);
//! let f0 = match steerer.steer(InstId(0), &producer, &mut pool) {
//!     SteerOutcome::Fifo(f) => f,
//!     SteerOutcome::Stall => unreachable!(),
//! };
//! let f1 = match steerer.steer(InstId(1), &consumer, &mut pool) {
//!     SteerOutcome::Fifo(f) => f,
//!     SteerOutcome::Stall => unreachable!(),
//! };
//! assert_eq!(f0, f1, "dependent instructions share a FIFO");
//! ```

pub mod analysis;
pub mod fifos;
pub mod restable;
pub mod steering;
pub mod steering_variants;

mod ids;

pub use ids::{FifoId, InstId};
