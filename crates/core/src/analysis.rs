//! Complexity-effectiveness analysis (paper Sections 5.3 and 5.5).
//!
//! The paper's bottom line combines two measurements: the IPC ratio between
//! the dependence-based and window-based machines (from cycle simulation)
//! and the clock-period ratio between them (from the circuit models). This
//! module performs that combination:
//!
//! > "if clk_dep is the clock speed of the dependence-based
//! > microarchitecture, and clk_win is the clock speed of the window-based
//! > microarchitecture, then … clk_dep / clk_win = 1.25" (0.18 µm)
//!
//! and overall speedup = (IPC_dep / IPC_win) × (clk_dep / clk_win).

use ce_delay::pipeline::ClockComparison;
use ce_delay::{DelayError, Technology};

/// A machine configuration for the clock-side of the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineSpec {
    /// Total issue width.
    pub issue_width: usize,
    /// Total window capacity (window machine) or FIFO capacity
    /// (dependence machine).
    pub window_size: usize,
    /// Number of clusters (1 for the conventional machine).
    pub clusters: usize,
}

impl MachineSpec {
    /// The paper's conventional 8-way, 64-entry window machine.
    pub fn paper_window_machine() -> MachineSpec {
        MachineSpec { issue_width: 8, window_size: 64, clusters: 1 }
    }

    /// The paper's 2×4-way clustered dependence-based machine.
    pub fn paper_dependence_machine() -> MachineSpec {
        MachineSpec { issue_width: 8, window_size: 64, clusters: 2 }
    }
}

/// The combined complexity-effectiveness verdict for one benchmark.
///
/// ```
/// use ce_core::analysis::{MachineSpec, Speedup};
/// use ce_delay::{FeatureSize, Technology};
///
/// let tech = Technology::new(FeatureSize::U018);
/// // 6% IPC loss, but the clock ratio more than compensates.
/// let s = Speedup::combine(&tech, MachineSpec::paper_dependence_machine(), 2.0, 1.88);
/// assert!(s.speedup > 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Speedup {
    /// IPC of the window-based machine (cycles-only simulation).
    pub ipc_window: f64,
    /// IPC of the dependence-based machine.
    pub ipc_dependence: f64,
    /// Clock-frequency advantage of the dependence-based machine
    /// (clk_dep / clk_win > 1 means it clocks faster).
    pub clock_ratio: f64,
    /// Net speedup: `(ipc_dependence / ipc_window) × clock_ratio`.
    pub speedup: f64,
}

impl Speedup {
    /// Combines measured IPCs with the modeled clock ratio for the given
    /// technology and machine pair.
    ///
    /// # Panics
    ///
    /// Panics if either IPC is not positive, or the dependence machine's
    /// cluster count does not divide its issue width.
    pub fn combine(
        tech: &Technology,
        dependence: MachineSpec,
        ipc_window: f64,
        ipc_dependence: f64,
    ) -> Speedup {
        assert!(ipc_window > 0.0, "window IPC must be positive");
        assert!(ipc_dependence > 0.0, "dependence IPC must be positive");
        Self::try_combine(tech, dependence, ipc_window, ipc_dependence)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked variant of [`Speedup::combine`]: returns an error instead of
    /// panicking when an IPC is non-positive or non-finite, or when the
    /// machine pair is outside the clock model's domain.
    pub fn try_combine(
        tech: &Technology,
        dependence: MachineSpec,
        ipc_window: f64,
        ipc_dependence: f64,
    ) -> Result<Speedup, DelayError> {
        for (name, ipc) in [("ipc_window", ipc_window), ("ipc_dependence", ipc_dependence)] {
            if !ipc.is_finite() || ipc <= 0.0 {
                return Err(DelayError::OutOfDomain {
                    structure: "speedup",
                    param: name,
                    value: ipc,
                    min: f64::MIN_POSITIVE,
                    max: f64::INFINITY,
                });
            }
        }
        let cmp = ClockComparison::try_compute(
            tech,
            dependence.issue_width,
            dependence.window_size,
            dependence.clusters,
        )?;
        let clock_ratio = cmp.conservative_speedup();
        Ok(Speedup {
            ipc_window,
            ipc_dependence,
            clock_ratio,
            speedup: ipc_dependence / ipc_window * clock_ratio,
        })
    }

    /// IPC degradation of the dependence-based machine, as a fraction
    /// (positive = slower in cycles).
    pub fn ipc_degradation(&self) -> f64 {
        1.0 - self.ipc_dependence / self.ipc_window
    }

    /// Net performance improvement as a fraction (the paper reports
    /// 10–22 %, average 16 %, for its seven benchmarks).
    pub fn improvement(&self) -> f64 {
        self.speedup - 1.0
    }
}

/// Summarizes speedups over a benchmark suite: the paper's "average
/// improvement of 16 %" statistic.
pub fn mean_improvement(speedups: &[Speedup]) -> f64 {
    if speedups.is_empty() {
        return 0.0;
    }
    speedups.iter().map(Speedup::improvement).sum::<f64>() / speedups.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_delay::FeatureSize;

    fn tech() -> Technology {
        Technology::new(FeatureSize::U018)
    }

    #[test]
    fn clock_ratio_matches_paper_ballpark() {
        let s = Speedup::combine(
            &tech(),
            MachineSpec::paper_dependence_machine(),
            2.0,
            2.0,
        );
        // Paper: 1.25 at 0.18 µm; the model lands within ±0.10.
        assert!((s.clock_ratio - 1.25).abs() < 0.10, "clock ratio {}", s.clock_ratio);
    }

    #[test]
    fn equal_ipc_yields_pure_clock_speedup() {
        let s = Speedup::combine(&tech(), MachineSpec::paper_dependence_machine(), 2.5, 2.5);
        assert!((s.speedup - s.clock_ratio).abs() < 1e-12);
        assert_eq!(s.ipc_degradation(), 0.0);
    }

    #[test]
    fn moderate_ipc_loss_still_wins() {
        // The paper's bottom line: ~6 % IPC loss, ~25 % clock gain → ~16 %
        // overall improvement.
        let s = Speedup::combine(
            &tech(),
            MachineSpec::paper_dependence_machine(),
            2.0,
            2.0 * 0.937,
        );
        assert!(s.improvement() > 0.08, "improvement {}", s.improvement());
        assert!(s.improvement() < 0.30);
    }

    #[test]
    fn mean_improvement_averages() {
        let mk = |ipc_dep: f64| {
            Speedup::combine(&tech(), MachineSpec::paper_dependence_machine(), 2.0, ipc_dep)
        };
        let suite = [mk(1.9), mk(2.0), mk(1.8)];
        let mean = mean_improvement(&suite);
        let expected: f64 =
            suite.iter().map(|s| s.improvement()).sum::<f64>() / 3.0;
        assert!((mean - expected).abs() < 1e-12);
        assert_eq!(mean_improvement(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ipc_panics() {
        let _ = Speedup::combine(&tech(), MachineSpec::paper_dependence_machine(), 0.0, 1.0);
    }

    #[test]
    fn try_combine_refuses_bad_inputs_without_panicking() {
        let dep = MachineSpec::paper_dependence_machine();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(Speedup::try_combine(&tech(), dep, bad, 2.0).is_err(), "ipc_window {bad}");
            assert!(Speedup::try_combine(&tech(), dep, 2.0, bad).is_err(), "ipc_dep {bad}");
        }
        // Cluster count that does not divide the issue width is a clock-model
        // domain error, surfaced as Err rather than a panic.
        let lopsided = MachineSpec { issue_width: 8, window_size: 64, clusters: 3 };
        assert!(Speedup::try_combine(&tech(), lopsided, 2.0, 2.0).is_err());
    }

    #[test]
    fn try_combine_matches_combine_on_valid_inputs() {
        let dep = MachineSpec::paper_dependence_machine();
        let a = Speedup::combine(&tech(), dep, 2.0, 1.88);
        let b = Speedup::try_combine(&tech(), dep, 2.0, 1.88).unwrap();
        assert_eq!(a, b);
    }
}
