//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate reimplements the subset its API that the
//! workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map`, implemented for integer/float ranges,
//!   tuples, and [`Just`];
//! * [`any`] for primitive types;
//! * [`collection::vec`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], and [`prop_assume!`] macros.
//!
//! Differences from the real crate, deliberately accepted for hermeticity:
//! failing cases are **not shrunk** (the failing inputs are printed
//! instead), and each test runs a fixed number of cases
//! (`PROPTEST_CASES`, default 64) from a seed derived from the test name,
//! so runs are reproducible.

use std::rc::Rc;

pub use rand::{Rng, SeedableRng};

/// Number of cases each `proptest!` test executes (env `PROPTEST_CASES`).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// The RNG driving strategy sampling. Deterministic per test name.
#[derive(Debug, Clone)]
pub struct TestRng(rand::StdRng);

impl TestRng {
    /// Seeds from a test's name so every run draws the same cases.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(rand::StdRng::seed_from_u64(h))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.gen::<u64>()
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of test values. Unlike real proptest there is no shrinking,
/// so a strategy is just a sampling function.
pub trait Strategy: Clone {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Primitive types with a "whole domain" strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws from the type's entire domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain (`any::<u32>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The result of [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy_unsigned {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}

macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy_unsigned!(u8, u16, u32, u64, usize);
impl_range_strategy_signed!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A type-erased sampling function, as produced by [`arm`].
pub type Sampler<T> = Rc<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice between boxed strategies — the engine behind
/// [`prop_oneof!`]. Arms may be different strategy types as long as they
/// produce the same value type.
pub struct OneOf<T> {
    arms: Vec<Sampler<T>>,
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> OneOf<T> {
        OneOf { arms: self.arms.clone() }
    }
}

impl<T> OneOf<T> {
    /// Builds a uniform choice over the given samplers.
    pub fn new(arms: Vec<Sampler<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        (self.arms[idx])(rng)
    }
}

/// Erases a strategy's type for use as a [`OneOf`] arm.
pub fn arm<S>(strategy: S) -> Sampler<S::Value>
where
    S: Strategy + 'static,
{
    Rc::new(move |rng| strategy.sample(rng))
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A vector whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The result of [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, Strategy,
    };
}

/// Defines `#[test]` functions that run their body over many sampled
/// inputs. No shrinking: on failure, the sampled inputs are printed via
/// the panic message of the failing assertion plus a case banner.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for _case in 0..$crate::cases() {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                    // prop_assume! expands to an early `return` from this
                    // closure, skipping the case.
                    let run = move || { $body };
                    run();
                }
            }
        )+
    };
}

/// `assert!` under a name the tests already use.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a name the tests already use.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a name the tests already use.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among strategy arms producing a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::arm($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        let s = (0u8..4, -5i32..5, 0.0f64..1.0);
        for _ in 0..1_000 {
            let (a, b, c) = s.sample(&mut rng);
            assert!(a < 4);
            assert!((-5..5).contains(&b));
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = crate::TestRng::deterministic("arms");
        let s = prop_oneof![Just(1u8), Just(2u8), 3u8..5];
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true, true]);
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = crate::TestRng::deterministic("lens");
        let s = crate::collection::vec(0u32..10, 2..7);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    proptest! {
        /// The macro itself: doc comments, multiple args, prop_assume.
        #[test]
        fn macro_smoke(a in 0u64..100, b in 0u64..100) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
