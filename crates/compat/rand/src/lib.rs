//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand` crate
//! cannot be fetched. This crate implements exactly the API subset the
//! workspace uses — `StdRng::seed_from_u64`, `Rng::gen`, and
//! `Rng::gen_range` — on top of a SplitMix64 generator. Sequences are
//! deterministic for a given seed and stable across platforms, which is
//! all the simulator's seeded steering policies and synthetic trace
//! generator require. The streams differ from upstream `rand`'s ChaCha12,
//! so any golden values recorded against this crate are tied to it.

use std::ops::Range;

/// SplitMix64 (Steele, Lea & Flood; public-domain reference constants):
/// full-period, passes BigCrush for the amount of state it carries, and
/// two instructions' worth of work per draw — plenty for steering
/// randomization and synthetic workloads.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` (multiply-shift; the tiny modulo bias
    /// for astronomically large bounds is irrelevant here).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Seeding, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // One warm-up mixing step so seed=0 does not start at state 0.
        let mut rng = StdRng { state: seed ^ 0x5DEE_CE66_D1CE_B00C };
        let _ = rng.next_u64();
        rng
    }
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut StdRng) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample(rng: &mut StdRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Standard for u64 {
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

/// Integer types `Rng::gen_range` can sample from a half-open range.
pub trait SampleUniform: Copy {
    /// Width of `range` as a `u64` span plus the offset decoder.
    fn from_offset(start: Self, offset: u64) -> Self;
    /// `end - start` as u64; must be > 0 for a valid range.
    fn span(range: &Range<Self>) -> u64;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_offset(start: $t, offset: u64) -> $t {
                start + offset as $t
            }
            fn span(range: &Range<$t>) -> u64 {
                assert!(range.start < range.end, "empty gen_range");
                (range.end - range.start) as u64
            }
        }
    )*};
}

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_offset(start: $t, offset: u64) -> $t {
                start.wrapping_add(offset as $t)
            }
            fn span(range: &Range<$t>) -> u64 {
                assert!(range.start < range.end, "empty gen_range");
                (range.end as i64).wrapping_sub(range.start as i64) as u64
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// The generator interface, mirroring `rand::Rng`.
pub trait Rng {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T;
    /// Draws uniformly from the half-open range `[start, end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T;
}

impl Rng for StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let span = T::span(&range);
        T::from_offset(range.start, self.below(span))
    }
}

/// `rand::rngs` module mirror.
pub mod rngs {
    pub use crate::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let s: i32 = rng.gen_range(-16..16);
            assert!((-16..16).contains(&s));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval_and_covers_it() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            lo |= v < 0.1;
            hi |= v > 0.9;
        }
        assert!(lo && hi, "draws must spread over the interval");
    }

    #[test]
    fn range_samples_hit_every_bucket() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..8_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 500), "{counts:?}");
    }
}
