//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This crate keeps the workspace's `#[bench]`-style
//! binaries compiling and *useful*: `bench_function` runs the closure
//! under a simple adaptive wall-clock loop (warm-up, then enough
//! iterations to fill a measurement window) and prints a
//! mean-per-iteration line. There is no statistical analysis, HTML
//! report, or regression store — for machine-readable perf tracking this
//! repository uses `ce-bench`'s `bench_snapshot` binary instead.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time per measured benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(200);

/// The benchmark driver handed to `bench_function` closures.
pub struct Bencher {
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `f` over an adaptively chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count that fills the
        // measurement window.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let iters = (MEASURE_WINDOW.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

/// The top-level harness state.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the adaptive loop ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut BenchmarkGroup {
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut BenchmarkGroup
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), &mut f);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut b = Bencher { measured: None };
    f(&mut b);
    match b.measured {
        Some((elapsed, iters)) => {
            let per_iter = elapsed.as_nanos() as f64 / iters as f64;
            println!("{id:<40} {:>14.1} ns/iter  ({iters} iters)", per_iter);
        }
        None => println!("{id:<40}  (no measurement: closure never called iter)"),
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| b.iter(|| black_box(2u64 + 2)));
        let mut group = c.benchmark_group("grp");
        group.sample_size(10);
        group.bench_function("inner", |b| b.iter(|| black_box(1u64)));
        group.finish();
    }
}
