//! Design-space exploration: the paper's central trade-off, quantified.
//!
//! For window-based machines of increasing issue width and window size,
//! combine the *simulated IPC* (cycles) with the *modeled clock period*
//! (picoseconds, from the wakeup+select critical path at 0.18 µm) into
//! billions of instructions per second — and watch bigger windows stop
//! paying for themselves, which is exactly the complexity-effectiveness
//! argument.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use complexity_effective::delay::{FeatureSize, PipelineDelays, Technology};
use complexity_effective::sim::{machine, SchedulerKind, Simulator};
use complexity_effective::workloads::{trace_benchmark, Benchmark};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::new(FeatureSize::U018);
    let trace = trace_benchmark(Benchmark::Gcc, 300_000)?;

    println!("Window-based design space on gcc, 0.18 um:");
    println!(
        "{:>6} {:>8} {:>8} {:>12} {:>10}",
        "width", "window", "IPC", "clock (ps)", "BIPS"
    );
    println!("{}", "-".repeat(48));

    let mut best: Option<(f64, usize, usize)> = None;
    for issue_width in [4usize, 8] {
        for window in [16usize, 32, 64, 128] {
            let mut cfg = machine::baseline_8way();
            cfg.issue_width = issue_width;
            cfg.fetch_width = issue_width;
            cfg.scheduler = SchedulerKind::CentralWindow { size: window };
            let stats = Simulator::new(cfg).run(&trace);

            // Clock limited by the window logic (wakeup + select).
            let delays = PipelineDelays::compute(&tech, issue_width, window);
            let clock_ps = delays.window_ps();
            let bips = stats.ipc() / clock_ps * 1000.0;
            println!(
                "{:>6} {:>8} {:>8.3} {:>12.1} {:>10.3}",
                issue_width, window, stats.ipc(), clock_ps, bips
            );
            if best.map(|(b, _, _)| bips > b).unwrap_or(true) {
                best = Some((bips, issue_width, window));
            }
        }
    }
    let (bips, width, window) = best.expect("non-empty sweep");
    println!();
    println!(
        "best window-based point: {width}-way, {window}-entry window at {bips:.3} BIPS"
    );
    println!("IPC keeps rising with window size, but the clock pays for it —");
    println!("the complexity-effective frontier is not at the biggest window.");
    Ok(())
}
