//! Figure 12, replayed: the paper's worked steering example.
//!
//! The paper walks its steering heuristic through a 15-instruction SPEC
//! code segment, showing which FIFO each instruction lands in and which
//! instructions issue together. This example reconstructs that figure from
//! the actual library: the `SRC_FIFO`-driven steerer assigns FIFOs, and the
//! timing simulator (4-wide, 4 FIFOs, as in the figure) produces the
//! issue groups.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example figure12
//! ```

use complexity_effective::core::fifos::{FifoPool, PoolConfig};
use complexity_effective::core::steering::{DependenceSteerer, SteerOutcome};
use complexity_effective::core::InstId;
use complexity_effective::isa::{Instruction, Opcode, Reg, TEXT_BASE};
use complexity_effective::sim::{machine, SchedulerKind, Simulator};
use complexity_effective::workloads::{DynInst, Trace};

/// The paper's Figure 12 code segment, in our ISA (register numbers as in
/// the paper; `$28` is `gp`).
fn figure12_code() -> Vec<Instruction> {
    let r = Reg::new;
    vec![
        /*  0 */ Instruction::rrr(Opcode::Addu, r(18), r(0), r(2)),
        /*  1 */ Instruction::imm(Opcode::Addiu, r(2), r(0), -1),
        /*  2 */ Instruction::branch2(Opcode::Beq, r(18), r(2), 20),
        /*  3 */ Instruction::mem(Opcode::Lw, r(4), -32768, r(28)),
        /*  4 */ Instruction::shift_var(Opcode::Sllv, r(2), r(18), r(20)),
        /*  5 */ Instruction::rrr(Opcode::Xor, r(16), r(2), r(19)),
        /*  6 */ Instruction::mem(Opcode::Lw, r(3), -32676, r(28)),
        /*  7 */ Instruction::shift(Opcode::Sll, r(2), r(16), 2),
        /*  8 */ Instruction::rrr(Opcode::Addu, r(2), r(2), r(23)),
        /*  9 */ Instruction::mem(Opcode::Lw, r(2), 0, r(2)),
        /* 10 */ Instruction::shift_var(Opcode::Sllv, r(4), r(18), r(4)),
        /* 11 */ Instruction::rrr(Opcode::Addu, r(17), r(4), r(19)),
        /* 12 */ Instruction::imm(Opcode::Addiu, r(3), r(3), 1),
        /* 13 */ Instruction::mem(Opcode::Sw, r(3), -32676, r(28)),
        /* 14 */ Instruction::branch2(Opcode::Beq, r(2), r(17), 20),
    ]
}

fn main() {
    let code = figure12_code();

    // ---- part 1: the steering decisions, exactly as the figure draws them
    println!("Steering (4 FIFOs, Section 5.1 heuristic):");
    let mut pool = FifoPool::new(PoolConfig { fifos: 4, depth: 8, clusters: 1 });
    let mut steerer = DependenceSteerer::new();
    for (i, inst) in code.iter().enumerate() {
        match steerer.steer(InstId(i as u64), inst, &mut pool) {
            SteerOutcome::Fifo(f) => println!("  {i:>2}: {inst:<28} -> {f}"),
            SteerOutcome::Stall => println!("  {i:>2}: {inst:<28} -> STALL"),
        }
    }

    // ---- part 2: the issue schedule on the 4-wide FIFO machine ----------
    // The figure assumes warm caches and draws dispatch and issue in the
    // same diagram, so: prepend cache-warming loads (to `zero`, creating no
    // dependences) and use a zero-depth front end.
    let addr_of = |inst: &Instruction| ce_isa_data_base().wrapping_add((inst.imm as u32) & 0xFFC);
    let mut trace = Trace::new();
    let mut pc = TEXT_BASE;
    let push = |trace: &mut Trace, pc: &mut u32, inst: Instruction, mem_addr: Option<u32>| {
        trace.push(DynInst { seq: 0, pc: *pc, inst, next_pc: *pc + 4, taken: false, mem_addr });
        *pc += 4;
    };
    let mut warm_addrs: Vec<u32> = Vec::new();
    for inst in &code {
        if matches!(inst.opcode, Opcode::Lw | Opcode::Sw) {
            let addr = addr_of(inst);
            if !warm_addrs.contains(&addr) {
                warm_addrs.push(addr);
            }
        }
    }
    let warmup_count = warm_addrs.len();
    for addr in warm_addrs {
        let warm = Instruction::mem(Opcode::Lw, Reg::ZERO, 0, Reg::new(28));
        push(&mut trace, &mut pc, warm, Some(addr));
    }
    for inst in &code {
        let mem_addr =
            matches!(inst.opcode, Opcode::Lw | Opcode::Sw).then(|| addr_of(inst));
        push(&mut trace, &mut pc, *inst, mem_addr);
    }
    trace.push(DynInst {
        seq: 0,
        pc,
        inst: Instruction::HALT,
        next_pc: pc + 4,
        taken: false,
        mem_addr: None,
    });
    trace.mark_completed();

    let mut cfg = machine::dependence_8way();
    cfg.issue_width = 4;
    cfg.fetch_width = 4;
    cfg.frontend_depth = 0; // the figure draws steer and issue back-to-back
    cfg.scheduler = SchedulerKind::Fifos { fifos_per_cluster: 4, depth: 8 };
    let (stats, schedule) = Simulator::new(cfg).run_traced(&trace);

    println!();
    println!("Issue groups (4-wide, issue from FIFO heads, warm cache):");
    let figure: Vec<_> = schedule
        .iter()
        .filter(|r| (warmup_count..warmup_count + code.len()).contains(&(r.seq as usize)))
        .collect();
    let first = figure.iter().map(|r| r.issued_at).min().expect("nonempty");
    let last = figure.iter().map(|r| r.issued_at).max().expect("nonempty");
    for cycle in first..=last {
        let group: Vec<String> = figure
            .iter()
            .filter(|r| r.issued_at == cycle)
            .map(|r| (r.seq as usize - warmup_count).to_string())
            .collect();
        if !group.is_empty() {
            println!("  cycle {:>2}: instructions {{{}}}", cycle - first + 1, group.join(","));
        }
    }
    println!("  (paper's groups: {{0,1,3}} {{2,4,6}} {{5,10}} {{7,11,12}} ...)");
    println!();
    println!(
        "{} instructions in {} cycles — the figure's dependence chains issue in order",
        stats.committed, stats.cycles
    );
    println!("from their FIFOs while independent chains proceed in parallel.");
}

fn ce_isa_data_base() -> u32 {
    complexity_effective::isa::DATA_BASE
}
