//! Quickstart: assemble a small program, trace it, and compare the
//! window-based and dependence-based machines — in both instructions per
//! cycle and clock-adjusted performance.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use complexity_effective::core::analysis::{MachineSpec, Speedup};
use complexity_effective::delay::{FeatureSize, Technology};
use complexity_effective::isa::asm::assemble;
use complexity_effective::sim::{machine, Simulator};
use complexity_effective::workloads::Emulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A little loop: sum an array with a multiply-accumulate chain.
    let program = assemble(
        "
        .data
    arr:    .space 4096
        .text
    main:
        # initialize arr[i] = i
        li   t0, 0
        li   t1, 1024
    init:
        sll  t2, t0, 2
        addu t3, gp, t2
        sw   t0, 0(t3)
        addiu t0, t0, 1
        bne  t0, t1, init
        # acc = chained multiply-accumulate: the next index depends on the
        # accumulator, so each iteration's load hangs off the previous one
        # (a dependence chain, the dependence-based design's home turf).
        li   s0, 0
        li   t0, 0
    sum:
        addu t2, t0, s0
        andi t2, t2, 1023
        sll  t2, t2, 2
        addu t3, gp, t2
        lw   t4, 0(t3)
        li   t5, 3
        mul  t6, t4, t5
        addu s0, s0, t6
        addiu t0, t0, 1
        bne  t0, t1, sum
        halt
    ",
    )?;

    // Functional emulation produces the dynamic trace.
    let mut emu = Emulator::new(&program);
    let trace = emu.run_to_completion(1_000_000)?;
    println!("trace: {} dynamic instructions", trace.len());

    // Timing simulation on the two headline machines.
    let window = Simulator::new(machine::baseline_8way()).run(&trace);
    let fifos = Simulator::new(machine::clustered_fifos_8way()).run(&trace);
    println!("8-way, 64-entry window machine: IPC {:.3}", window.ipc());
    println!("2x4-way dependence-based machine: IPC {:.3}", fifos.ipc());
    println!(
        "inter-cluster bypasses exercised by {:.1}% of instructions",
        fifos.intercluster_bypass_frequency() * 100.0
    );

    // The complexity side: the dependence-based machine clocks faster.
    let tech = Technology::new(FeatureSize::U018);
    let verdict = Speedup::combine(
        &tech,
        MachineSpec::paper_dependence_machine(),
        window.ipc(),
        fifos.ipc(),
    );
    println!(
        "clock ratio {:.2}x, net speedup {:.2}x ({:+.1}%)",
        verdict.clock_ratio,
        verdict.speedup,
        verdict.improvement() * 100.0
    );
    Ok(())
}
