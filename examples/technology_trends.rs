//! Technology trends: replay the paper's Section 4 argument end to end.
//!
//! For each CMOS generation, print every modeled structure's delay for a
//! 4-way/32-entry and an 8-way/64-entry machine, identify the critical
//! stage, and show which structures scale with feature size and which are
//! wire-bound — the observation that motivates the dependence-based
//! design.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example technology_trends
//! ```

use complexity_effective::delay::{PipelineDelays, Technology};

fn main() {
    for (issue_width, window) in [(4usize, 32usize), (8, 64)] {
        println!("{issue_width}-way machine, {window}-entry window:");
        println!(
            "{:<8} {:>10} {:>14} {:>10} {:>16}",
            "tech", "rename", "wakeup+select", "bypass", "critical stage"
        );
        println!("{}", "-".repeat(62));
        for tech in Technology::all() {
            let d = PipelineDelays::compute(&tech, issue_width, window);
            println!(
                "{:<8} {:>10.1} {:>14.1} {:>10.1} {:>16}",
                tech.feature().to_string(),
                d.rename_ps,
                d.window_ps(),
                d.bypass_ps,
                d.critical_stage().stage.to_string()
            );
        }
        println!();
    }

    // How much each structure improved across two generations.
    let [t080, _, t018] = Technology::all();
    let old = PipelineDelays::compute(&t080, 8, 64);
    let new = PipelineDelays::compute(&t018, 8, 64);
    println!("Scaling from 0.8 um to 0.18 um (8-way/64):");
    println!("  rename         {:.1}x faster", old.rename_ps / new.rename_ps);
    println!("  wakeup+select  {:.1}x faster", old.window_ps() / new.window_ps());
    println!("  bypass         {:.1}x faster", old.bypass_ps / new.bypass_ps);
    println!();
    println!("Logic-bound structures ride the technology; the bypass wires do not —");
    println!("which is why wide-issue machines must cluster, and why grouping dependent");
    println!("instructions (so bypasses stay local) is the complexity-effective answer.");
}
