//! Steering laboratory: how dependence structure drives cluster traffic.
//!
//! Uses the synthetic trace generator to dial dependence locality from
//! tight chains to diffuse dataflow, and measures how each clustered
//! organization's IPC and inter-cluster bypass frequency respond. Tight
//! chains are exactly what the dependence-steering heuristic exploits.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example steering_lab
//! ```

use complexity_effective::sim::{machine, Simulator};
use complexity_effective::workloads::synthetic::{generate, SyntheticConfig};

fn main() {
    println!("Synthetic dataflow: dependence locality vs clustered performance");
    println!(
        "{:>9} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
        "locality", "fifoIPC", "IC %", "randIPC", "IC %", "execIPC", "IC %"
    );
    println!("{}", "-".repeat(66));

    for locality in [0.9, 0.6, 0.3, 0.1] {
        let config = SyntheticConfig {
            dep_locality: locality,
            predictability: 0.95,
            ..SyntheticConfig::default()
        };
        let trace = generate(&config, 100_000);

        let fifo = Simulator::new(machine::clustered_fifos_8way()).run(&trace);
        let random = Simulator::new(machine::clustered_windows_random_8way()).run(&trace);
        let exec = Simulator::new(machine::clustered_window_exec_8way()).run(&trace);

        println!(
            "{:>9.1} | {:>8.3} {:>7.1}% | {:>8.3} {:>7.1}% | {:>8.3} {:>7.1}%",
            locality,
            fifo.ipc(),
            fifo.intercluster_bypass_frequency() * 100.0,
            random.ipc(),
            random.intercluster_bypass_frequency() * 100.0,
            exec.ipc(),
            exec.intercluster_bypass_frequency() * 100.0,
        );
    }
    println!();
    println!("Dependence steering thrives on tight chains (high locality): whole chains");
    println!("stay inside one cluster. Random steering pays inter-cluster latency");
    println!("regardless of structure — dependence-awareness is what matters.");
}
