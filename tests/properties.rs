//! Property-based integration tests (proptest): random programs, random
//! synthetic workloads, and random machine configurations must all
//! simulate to completion with conserved instruction counts.

use complexity_effective::isa::asm::assemble;
use complexity_effective::isa::{decode, encode, Instruction, Opcode, Reg};
use complexity_effective::sim::{machine, SchedulerKind, Simulator, SteeringPolicy};
use complexity_effective::workloads::synthetic::{generate, SyntheticConfig};
use complexity_effective::workloads::Emulator;
use proptest::prelude::*;

/// Strategy: an arbitrary valid instruction (covering every operand class).
fn arb_instruction() -> impl Strategy<Value = Instruction> {
    let reg = (0u8..32).prop_map(Reg::new);
    prop_oneof![
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| {
            Instruction::rrr(Opcode::Xor, d, a, b)
        }),
        (reg.clone(), reg.clone(), 0u8..32)
            .prop_map(|(d, t, s)| Instruction::shift(Opcode::Sll, d, t, s)),
        (reg.clone(), reg.clone(), -32768i32..32768)
            .prop_map(|(t, s, imm)| Instruction::imm(Opcode::Addiu, t, s, imm)),
        (reg.clone(), reg.clone(), -32768i32..32768)
            .prop_map(|(t, s, imm)| Instruction::mem(Opcode::Lw, t, imm, s)),
        (reg.clone(), reg.clone(), -32768i32..32768)
            .prop_map(|(t, s, imm)| Instruction::mem(Opcode::Sw, t, imm, s)),
        (reg.clone(), reg, -1000i32..1000)
            .prop_map(|(a, b, d)| Instruction::branch2(Opcode::Beq, a, b, d)),
        (0u32..(1 << 26)).prop_map(|t| Instruction::jump(Opcode::Jal, t)),
        Just(Instruction::NOP),
        Just(Instruction::HALT),
    ]
}

proptest! {
    /// Encode/decode is the identity on every constructible instruction.
    #[test]
    fn encoding_roundtrips(inst in arb_instruction()) {
        let decoded = decode(encode(&inst)).expect("own encodings decode");
        prop_assert_eq!(decoded, inst);
    }

    /// The disassembler's output for non-control instructions reassembles
    /// to the same instruction.
    #[test]
    fn disassembly_reassembles(inst in arb_instruction()) {
        let is_control = inst.opcode.is_control();
        prop_assume!(!is_control); // branch targets print as raw offsets
        let text = format!("{inst}\nhalt\n");
        let program = assemble(&text).expect("disassembly must reassemble");
        prop_assert_eq!(program.text[0], inst);
    }

    /// Straight-line arithmetic programs emulate exactly as many
    /// instructions as they contain.
    #[test]
    fn straightline_programs_run(ops in proptest::collection::vec(0u8..5, 1..60)) {
        let mut src = String::from("li t0, 3\nli t1, 5\n");
        for op in &ops {
            let line = match op {
                0 => "addu t2, t0, t1\n",
                1 => "subu t2, t1, t0\n",
                2 => "xor t0, t0, t1\n",
                3 => "sll t1, t1, 1\n",
                _ => "sltu t2, t0, t1\n",
            };
            src.push_str(line);
        }
        src.push_str("halt\n");
        let program = assemble(&src).expect("valid source");
        let mut emu = Emulator::new(&program);
        let trace = emu.run_to_completion(10_000).expect("halts");
        prop_assert_eq!(trace.len(), ops.len() + 3);
    }

    /// Any valid synthetic workload simulates to completion on any machine
    /// organization, committing exactly the trace length.
    #[test]
    fn synthetic_workloads_always_complete(
        seed in 0u64..1000,
        load in 0.0f64..0.4,
        branch in 0.0f64..0.3,
        locality in 0.05f64..1.0,
        org in 0usize..5,
    ) {
        let config = SyntheticConfig {
            seed,
            load_frac: load,
            store_frac: 0.1,
            branch_frac: branch,
            dep_locality: locality,
            ..SyntheticConfig::default()
        };
        let trace = generate(&config, 2_000);
        let cfg = machine::figure17_machines()[org].1;
        let stats = Simulator::new(cfg).run(&trace);
        prop_assert_eq!(stats.committed, trace.len() as u64);
        prop_assert!(stats.ipc() > 0.0 && stats.ipc() <= 8.0);
    }

    /// FIFO geometry never breaks the simulator, only its performance.
    #[test]
    fn any_fifo_geometry_simulates(
        fifos in 1usize..12,
        depth in 1usize..12,
        clusters in 1usize..3,
    ) {
        prop_assume!(8 % clusters == 0);
        let config = SyntheticConfig::default();
        let trace = generate(&config, 1_500);
        let mut cfg = machine::dependence_8way();
        cfg.clusters = clusters;
        cfg.scheduler = SchedulerKind::Fifos { fifos_per_cluster: fifos, depth };
        cfg.steering = SteeringPolicy::Dependence;
        let stats = Simulator::new(cfg).run(&trace);
        prop_assert_eq!(stats.committed, trace.len() as u64);
    }
}
