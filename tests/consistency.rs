//! Cross-configuration consistency: monotonicity and conservation laws
//! that must hold for *any* correct timing model, independent of the
//! paper's numbers.

use complexity_effective::sim::{machine, SchedulerKind, Simulator};
use complexity_effective::workloads::synthetic::{generate, SyntheticConfig};
use complexity_effective::workloads::{trace_benchmark, Benchmark, Trace};

fn perl() -> Trace {
    trace_benchmark(Benchmark::Perl, 120_000).expect("kernel runs")
}

#[test]
fn larger_windows_never_hurt() {
    let t = perl();
    let mut last = 0.0;
    for size in [8usize, 16, 32, 64, 128] {
        let mut cfg = machine::baseline_8way();
        cfg.scheduler = SchedulerKind::CentralWindow { size };
        let ipc = Simulator::new(cfg).run(&t).ipc();
        assert!(
            ipc >= last * 0.999,
            "window {size}: IPC {ipc} dropped below {last}"
        );
        last = ipc;
    }
}

#[test]
fn wider_issue_never_hurts() {
    let t = perl();
    let mut last = 0.0;
    for width in [1usize, 2, 4, 8] {
        let mut cfg = machine::baseline_8way();
        cfg.issue_width = width;
        cfg.fetch_width = width.max(2);
        let ipc = Simulator::new(cfg).run(&t).ipc();
        assert!(ipc >= last * 0.999, "width {width}: IPC {ipc} below {last}");
        last = ipc;
    }
}

#[test]
fn slower_intercluster_bypass_never_helps() {
    let t = perl();
    let mut last = f64::INFINITY;
    for extra in 0..=4u64 {
        let mut cfg = machine::clustered_fifos_8way();
        cfg.intercluster_extra = extra;
        let ipc = Simulator::new(cfg).run(&t).ipc();
        assert!(
            ipc <= last * 1.001,
            "extra {extra}: IPC {ipc} rose above {last}"
        );
        last = ipc;
    }
}

#[test]
fn more_fifos_never_hurt() {
    let t = perl();
    let mut last = 0.0;
    for fifos in [2usize, 4, 8, 16] {
        let mut cfg = machine::dependence_8way();
        cfg.scheduler = SchedulerKind::Fifos { fifos_per_cluster: fifos, depth: 8 };
        let ipc = Simulator::new(cfg).run(&t).ipc();
        assert!(ipc >= last * 0.999, "{fifos} FIFOs: IPC {ipc} below {last}");
        last = ipc;
    }
}

#[test]
fn zero_extra_latency_clusters_match_dependence_machine_closely() {
    // With free inter-cluster bypasses, the only difference between the
    // clustered and unclustered FIFO machines is FU partitioning.
    let t = perl();
    let mut clustered = machine::clustered_fifos_8way();
    clustered.intercluster_extra = 0;
    let c = Simulator::new(clustered).run(&t).ipc();
    let u = Simulator::new(machine::dependence_8way()).run(&t).ipc();
    assert!(
        (c - u).abs() / u < 0.10,
        "free bypasses should nearly equalize: clustered {c}, unclustered {u}"
    );
}

#[test]
fn single_cluster_reports_zero_intercluster_traffic() {
    let t = perl();
    for cfg in [machine::baseline_8way(), machine::dependence_8way()] {
        let stats = Simulator::new(cfg).run(&t);
        assert_eq!(stats.intercluster_bypasses, 0);
        assert_eq!(stats.intercluster_bypass_frequency(), 0.0);
    }
}

#[test]
fn perfect_prediction_workload_has_no_mispredictions() {
    // A branch-free synthetic stream: nothing to mispredict.
    let config = SyntheticConfig {
        branch_frac: 0.0,
        load_frac: 0.2,
        store_frac: 0.1,
        ..SyntheticConfig::default()
    };
    let t = generate(&config, 20_000);
    let stats = Simulator::new(machine::baseline_8way()).run(&t);
    assert_eq!(stats.branches, 0);
    assert_eq!(stats.mispredictions, 0);
}

#[test]
fn random_branches_hurt_more_than_predictable_ones() {
    let base = SyntheticConfig { branch_frac: 0.2, ..SyntheticConfig::default() };
    let predictable = generate(&SyntheticConfig { predictability: 1.0, ..base }, 60_000);
    let chaotic = generate(
        &SyntheticConfig { predictability: 0.0, taken_prob: 0.5, seed: 99, ..base },
        60_000,
    );
    let p = Simulator::new(machine::baseline_8way()).run(&predictable);
    let c = Simulator::new(machine::baseline_8way()).run(&chaotic);
    assert!(p.ipc() > c.ipc() * 1.3, "predictable {} vs chaotic {}", p.ipc(), c.ipc());
    assert!(c.branch_accuracy() < 0.7);
    assert!(p.branch_accuracy() > 0.95);
}

#[test]
fn retire_width_sixteen_is_not_the_bottleneck() {
    // Table 3's retire width (16) is twice the issue width: shrinking it
    // to 8 must not change IPC much, but 2 must.
    let t = perl();
    let base = Simulator::new(machine::baseline_8way()).run(&t).ipc();
    let mut cfg = machine::baseline_8way();
    cfg.retire_width = 8;
    let at8 = Simulator::new(cfg).run(&t).ipc();
    let mut cfg = machine::baseline_8way();
    cfg.retire_width = 2;
    let at2 = Simulator::new(cfg).run(&t).ipc();
    assert!((base - at8).abs() / base < 0.05, "retire 8: {at8} vs {base}");
    assert!(at2 < base, "retire 2 must throttle: {at2} vs {base}");
}
