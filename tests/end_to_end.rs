//! End-to-end integration: assemble → emulate → trace → simulate, across
//! every benchmark kernel and machine organization.

use complexity_effective::sim::{machine, Simulator};
use complexity_effective::workloads::{trace_benchmark, Benchmark, Trace};

fn trace(b: Benchmark, cap: u64) -> Trace {
    trace_benchmark(b, cap).unwrap_or_else(|e| panic!("{b}: {e}"))
}

#[test]
fn every_benchmark_simulates_on_the_baseline() {
    for b in Benchmark::all() {
        let t = trace(b, 100_000);
        let stats = Simulator::new(machine::baseline_8way()).run(&t);
        assert_eq!(stats.committed, t.len() as u64, "{b}: all instructions commit");
        assert!(stats.cycles > 0, "{b}");
        // Table 3's machine cannot exceed its issue width, and a real
        // workload on an 8-way machine lands well above 0.5 IPC.
        assert!(stats.ipc() <= 8.0, "{b}: IPC {}", stats.ipc());
        assert!(stats.ipc() > 0.5, "{b}: IPC {}", stats.ipc());
    }
}

#[test]
fn every_organization_commits_the_same_instructions() {
    let t = trace(Benchmark::Perl, 60_000);
    let mut reference = None;
    for (name, cfg) in machine::figure17_machines() {
        let stats = Simulator::new(cfg).run(&t);
        assert_eq!(stats.committed, t.len() as u64, "{name}");
        // Committed branch/load/store counts are functional properties and
        // must not vary across timing models.
        let signature = (stats.branches, stats.loads, stats.stores);
        match reference {
            None => reference = Some(signature),
            Some(r) => assert_eq!(signature, r, "{name}"),
        }
    }
}

#[test]
fn dependence_machine_tracks_the_window_machine() {
    // Figure 13's claim, as a regression bound: the unclustered
    // dependence-based machine is within 20 % of the window machine on
    // every kernel (the paper reports ≤ 8 % on SPEC95; our kernels give
    // the heuristic a harder time on gcc/perl, whose store-address-first
    // issue feeds the flexible window extra ILP the FIFO heads cannot
    // reach).
    for b in Benchmark::all() {
        let t = trace(b, 150_000);
        let win = Simulator::new(machine::baseline_8way()).run(&t);
        let dep = Simulator::new(machine::dependence_8way()).run(&t);
        let degradation = 1.0 - dep.ipc() / win.ipc();
        assert!(
            degradation < 0.20,
            "{b}: window {:.3}, fifos {:.3}, degradation {:.1}%",
            win.ipc(),
            dep.ipc(),
            degradation * 100.0
        );
        assert!(dep.ipc() <= win.ipc() * 1.02, "{b}: FIFOs cannot beat the flexible window");
    }
}

#[test]
fn branch_stats_match_trace_content() {
    let t = trace(Benchmark::Go, 80_000);
    let expected_branches = t.iter().filter(|d| d.is_conditional_branch()).count() as u64;
    let stats = Simulator::new(machine::baseline_8way()).run(&t);
    assert_eq!(stats.branches, expected_branches);
    assert!(stats.mispredictions <= stats.branches);
    assert!(stats.branch_accuracy() > 0.6, "gshare accuracy {}", stats.branch_accuracy());
}

#[test]
fn memory_stats_match_trace_content() {
    let t = trace(Benchmark::Li, 80_000);
    let loads = t.iter().filter(|d| d.inst.opcode.is_load()).count() as u64;
    let stores = t.iter().filter(|d| d.inst.opcode.is_store()).count() as u64;
    let stats = Simulator::new(machine::baseline_8way()).run(&t);
    assert_eq!(stats.loads, loads);
    assert_eq!(stats.stores, stores);
    // Every non-forwarded load and every store accesses the cache.
    assert_eq!(stats.dcache_accesses + stats.forwarded_loads, loads + stores);
}

#[test]
fn truncated_traces_still_simulate() {
    // Cutting a trace mid-program (the paper's 0.5 B cap) must not wedge
    // the pipeline.
    let t = trace(Benchmark::M88ksim, 12_345);
    assert!(!t.is_completed());
    let stats = Simulator::new(machine::clustered_fifos_8way()).run(&t);
    assert_eq!(stats.committed, 12_345);
}
