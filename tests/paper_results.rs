//! The paper's headline quantitative claims, as integration tests.
//!
//! Each test names the paper artifact it guards. Tolerances are loose
//! enough to absorb the workload substitution (our kernels are SPEC95
//! analogues, not SPEC95) but tight enough that a broken model or
//! scheduler fails loudly.

use complexity_effective::core::analysis::{mean_improvement, MachineSpec, Speedup};
use complexity_effective::delay::pipeline::ClockComparison;
use complexity_effective::delay::{FeatureSize, PipelineDelays, Technology};
use complexity_effective::sim::{machine, Simulator};
use complexity_effective::workloads::{trace_benchmark, Benchmark, Trace};

const CAP: u64 = 400_000;

fn traces() -> Vec<(Benchmark, Trace)> {
    Benchmark::all()
        .into_iter()
        .map(|b| (b, trace_benchmark(b, CAP).expect("kernel runs")))
        .collect()
}

/// Table 2 at 0.18 µm — the technology the paper's conclusions rest on.
#[test]
fn table2_018um_anchors() {
    let tech = Technology::new(FeatureSize::U018);
    let d4 = PipelineDelays::compute(&tech, 4, 32);
    let d8 = PipelineDelays::compute(&tech, 8, 64);
    let close = |got: f64, want: f64| (got - want).abs() / want < 0.10;
    assert!(close(d4.rename_ps, 351.0), "rename 4-way {}", d4.rename_ps);
    assert!(close(d4.window_ps(), 578.0), "window 4-way {}", d4.window_ps());
    assert!(close(d8.rename_ps, 427.9), "rename 8-way {}", d8.rename_ps);
    assert!(close(d8.window_ps(), 724.0), "window 8-way {}", d8.window_ps());
    assert!(close(d4.bypass_ps, 184.9), "bypass 4-way {}", d4.bypass_ps);
    assert!(close(d8.bypass_ps, 1056.4), "bypass 8-way {}", d8.bypass_ps);
}

/// Section 5.5: clk_dep / clk_win ≈ 1.25 at 0.18 µm.
#[test]
fn clock_ratio_near_1_25() {
    let tech = Technology::new(FeatureSize::U018);
    let cmp = ClockComparison::compute(&tech, 8, 64, 2);
    let ratio = cmp.conservative_speedup();
    assert!((1.15..=1.40).contains(&ratio), "clock ratio {ratio}");
}

/// Figure 13: the dependence-based machine extracts similar parallelism —
/// mean degradation in single figures, and several benchmarks essentially
/// unchanged.
#[test]
fn figure13_dependence_based_ipc_close_to_window() {
    let mut degradations = Vec::new();
    for (b, t) in traces() {
        let win = Simulator::new(machine::baseline_8way()).run(&t);
        let dep = Simulator::new(machine::dependence_8way()).run(&t);
        degradations.push((b, 1.0 - dep.ipc() / win.ipc()));
    }
    let mean =
        degradations.iter().map(|(_, d)| d).sum::<f64>() / degradations.len() as f64;
    assert!(mean < 0.08, "mean degradation {:.3}", mean);
    let within_5pct = degradations.iter().filter(|(_, d)| *d < 0.05).count();
    assert!(
        within_5pct >= 4,
        "at least four benchmarks within 5% (paper: five of seven): {degradations:?}"
    );
}

/// Figure 17 (top): organization ordering — random steering is the worst
/// clustered organization on every benchmark; execution-driven steering is
/// the best; nothing beats the ideal machine.
#[test]
fn figure17_organization_ordering() {
    for (b, t) in traces() {
        let ideal = Simulator::new(machine::baseline_8way()).run(&t).ipc();
        let fifo = Simulator::new(machine::clustered_fifos_8way()).run(&t).ipc();
        let windows =
            Simulator::new(machine::clustered_windows_dispatch_8way()).run(&t).ipc();
        let exec = Simulator::new(machine::clustered_window_exec_8way()).run(&t).ipc();
        let random =
            Simulator::new(machine::clustered_windows_random_8way()).run(&t).ipc();

        assert!(ideal >= fifo * 0.999, "{b}: ideal {ideal} vs fifo {fifo}");
        assert!(ideal >= exec * 0.999, "{b}: ideal {ideal} vs exec {exec}");
        assert!(random <= fifo, "{b}: random {random} must trail fifo dispatch {fifo}");
        assert!(random <= windows, "{b}: random {random} must trail window dispatch {windows}");
        assert!(random <= exec, "{b}: random {random} must trail exec steering {exec}");
        // Exec-driven steering stays within 8% of ideal (paper: ≤ 6%).
        assert!(exec > 0.92 * ideal, "{b}: exec {exec} vs ideal {ideal}");
        // Random steering loses a double-digit percentage (paper: 17–26%).
        assert!(random < 0.92 * ideal, "{b}: random should hurt, got {random} vs {ideal}");
    }
}

/// Figure 17 (bottom): inter-cluster bypass frequency is highest for
/// random steering and anti-correlates with IPC.
#[test]
fn figure17_bypass_frequency_ordering() {
    for (b, t) in traces() {
        let fifo = Simulator::new(machine::clustered_fifos_8way()).run(&t);
        let exec = Simulator::new(machine::clustered_window_exec_8way()).run(&t);
        let random = Simulator::new(machine::clustered_windows_random_8way()).run(&t);
        let f = fifo.intercluster_bypass_frequency();
        let e = exec.intercluster_bypass_frequency();
        let r = random.intercluster_bypass_frequency();
        assert!(r > f, "{b}: random ({r:.3}) must out-communicate dependence steering ({f:.3})");
        assert!(r > e, "{b}: random ({r:.3}) must out-communicate exec steering ({e:.3})");
        assert!(r > 0.2, "{b}: random steering communicates heavily, got {r:.3}");
        assert!(e < 0.15, "{b}: exec steering minimizes communication, got {e:.3}");
    }
}

/// Sections 5.3/5.5 bottom line: positive average clock-adjusted speedup.
#[test]
fn net_speedup_is_positive_on_average() {
    let tech = Technology::new(FeatureSize::U018);
    let mut speedups = Vec::new();
    for (_, t) in traces() {
        let win = Simulator::new(machine::baseline_8way()).run(&t);
        let dep = Simulator::new(machine::clustered_fifos_8way()).run(&t);
        speedups.push(Speedup::combine(
            &tech,
            MachineSpec::paper_dependence_machine(),
            win.ipc(),
            dep.ipc(),
        ));
    }
    let mean = mean_improvement(&speedups);
    assert!(
        mean > 0.05,
        "average clock-adjusted improvement should be clearly positive, got {:.3}",
        mean
    );
    assert!(mean < 0.35, "and not implausibly large, got {mean:.3}");
}

/// Section 4.4 / Table 1: clustering halves the bypass problem — an
/// argument that must survive end-to-end in the delay models.
#[test]
fn bypass_wires_motivate_clustering() {
    let tech = Technology::new(FeatureSize::U018);
    let d8 = PipelineDelays::compute(&tech, 8, 64);
    let d4 = PipelineDelays::compute(&tech, 4, 32);
    // At 8-way, bypass exceeds every structure but wakeup+select…
    assert!(d8.bypass_ps > d8.rename_ps);
    // …but a 4-way cluster's local bypass fits comfortably in a cycle.
    assert!(d4.bypass_ps < d4.rename_ps);
    assert!(d8.bypass_ps / d4.bypass_ps > 5.0);
}
